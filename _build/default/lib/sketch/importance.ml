module Prng = Dcs_util.Prng
module Ugraph = Dcs_graph.Ugraph
module Digraph = Dcs_graph.Digraph

let clamp p = Float.max 0.0 (Float.min 1.0 p)

let sample_ugraph rng ~prob g =
  let h = Ugraph.create (Ugraph.n g) in
  Ugraph.iter_edges g (fun u v w ->
      let p = clamp (prob u v w) in
      if p >= 1.0 then Ugraph.add_edge h u v w
      else if p > 0.0 && Prng.bernoulli rng p then Ugraph.add_edge h u v (w /. p));
  h

let sample_digraph rng ~prob g =
  let h = Digraph.create (Digraph.n g) in
  Digraph.iter_edges g (fun u v w ->
      let p = clamp (prob u v w) in
      if p >= 1.0 then Digraph.add_edge h u v w
      else if p > 0.0 && Prng.bernoulli rng p then Digraph.add_edge h u v (w /. p));
  h

let expected_edges_ugraph ~prob g =
  Ugraph.fold_edges (fun u v w acc -> acc +. clamp (prob u v w)) g 0.0

let expected_edges_digraph ~prob g =
  Digraph.fold_edges (fun u v w acc -> acc +. clamp (prob u v w)) g 0.0

(** Cut sketches for β-balanced directed graphs — the upper-bound side of
    the paper's Theorems 1.1/1.2 (constructions in the shape of IT18 and
    CCPS21).

    Both samplers compute Nagamochi–Ibaraki strengths on the undirected
    projection (forward + backward weight per pair) and then sample each
    *directed* edge independently with a strength-based probability,
    oversampled by a function of β. In a β-balanced graph every directed
    cut is within a (1+β) factor of the corresponding undirected cut, so
    undirected strengths certify directed cut variance up to β factors —
    this is the mechanism behind the Õ(nβ/ε²) for-all bound of CCPS21.

    - [forall_sketch]: p_e = min(1, c·β·ln n / (ε²·k_e)). All directed cuts
      preserved within (1 ± ε) w.h.p.; expected size Õ(nβ/ε²) edges.
    - [foreach_sketch]: p_e = min(1, c·β / (ε²·k_e)) — the same scheme
      without the union-bound log factor; each fixed cut is preserved with
      constant probability (Chebyshev). Note: the asymptotically smaller
      Õ(n√β/ε) for-each construction of CCPS21 requires machinery beyond
      the scope of this reproduction; DESIGN.md discusses this substitution
      and experiment E8 uses the instance-optimal codec for the tightness
      comparison instead. *)

val forall_sketch :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> beta:float -> Dcs_graph.Digraph.t -> Sketch.t

val foreach_sketch :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> beta:float -> Dcs_graph.Digraph.t -> Sketch.t

val forall_sparsify :
  ?c:float ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t

val foreach_sparsify :
  ?c:float ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t

(** Idealized (1 ± ε′) cut oracle.

    The lower-bound theorems quantify over *every* sketching algorithm with
    a given accuracy; this module provides the adversary's best case — a
    black box that answers each cut query within a (1 ± ε′) multiplicative
    factor and nothing more. Running the Section 3/4 decoders against it at
    varying ε′ exhibits the accuracy threshold at which decoding collapses,
    which is the operational content of the lower bounds ("a sketch this
    accurate carries this many bits").

    Noise modes:
    - [Random]: each query perturbed by an independent uniform factor in
      [1-ε′, 1+ε′] (models an unbiased sketch);
    - [Adversarial]: each query scaled by (1 + ε′·σ) with σ a fresh random
      sign (worst-case magnitude, the regime the proofs assume);
    - [Deterministic_up] / [Deterministic_down]: always (1 ± ε′), useful in
      tests. *)

type mode = Random | Adversarial | Deterministic_up | Deterministic_down

val create :
  ?mode:mode -> Dcs_util.Prng.t -> eps:float -> Dcs_graph.Digraph.t -> Sketch.t
(** [size_bits] is reported as the canonical encoding of the underlying
    graph (the oracle is idealized; its size is not the object of study). *)

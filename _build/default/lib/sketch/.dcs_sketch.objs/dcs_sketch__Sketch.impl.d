lib/sketch/sketch.ml: Array Dcs_graph Dcs_util Float List Printf

lib/sketch/noisy_oracle.mli: Dcs_graph Dcs_util Sketch

lib/sketch/benczur_karger.ml: Dcs_graph Importance Printf Sketch Strength

lib/sketch/importance.mli: Dcs_graph Dcs_util

lib/sketch/directed_sparsifier.ml: Dcs_graph Importance Printf Sketch Strength

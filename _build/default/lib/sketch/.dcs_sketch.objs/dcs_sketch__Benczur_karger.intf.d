lib/sketch/benczur_karger.mli: Dcs_graph Dcs_util Sketch

lib/sketch/strength.ml: Array Dcs_graph Float Hashtbl List

lib/sketch/foreach_sampler.ml: Dcs_graph Importance Printf Sketch Strength

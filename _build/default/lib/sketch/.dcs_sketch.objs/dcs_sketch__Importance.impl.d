lib/sketch/importance.ml: Dcs_graph Dcs_util Float

lib/sketch/exact_sketch.ml: Dcs_graph Sketch

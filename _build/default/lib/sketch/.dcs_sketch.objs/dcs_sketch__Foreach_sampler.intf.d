lib/sketch/foreach_sampler.mli: Dcs_graph Dcs_util Sketch

lib/sketch/directed_sparsifier.mli: Dcs_graph Dcs_util Sketch

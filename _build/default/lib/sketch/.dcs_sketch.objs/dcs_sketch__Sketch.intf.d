lib/sketch/sketch.mli: Dcs_graph

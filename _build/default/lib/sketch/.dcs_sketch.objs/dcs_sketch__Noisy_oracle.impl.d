lib/sketch/noisy_oracle.ml: Dcs_graph Dcs_util Printf Sketch

lib/sketch/strength.mli: Dcs_graph

lib/sketch/imbalance_sketch.mli: Dcs_graph Dcs_util Sketch

lib/sketch/exact_sketch.mli: Dcs_graph Sketch

lib/sketch/imbalance_sketch.ml: Array Dcs_graph Foreach_sampler Printf Sketch

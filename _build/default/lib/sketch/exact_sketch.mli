(** The lossless sketch: stores the graph itself.

    Queries are exact ((1 ± 0) in both the for-each and for-all sense) and
    the size is the canonical graph encoding. This is the
    information-theoretic reference point: on a lower-bound instance, the
    number of bits the decoder extracts can approach but never exceed this
    size. *)

val create : Dcs_graph.Digraph.t -> Sketch.t

(** Strength-based importance sampling for *for-each* cut estimation on
    undirected graphs.

    Keeps edge e with p_e = min(1, c·w_e/(ε²·k_e)) (k_e the NI index) and
    reweights by 1/p_e. For a fixed cut S, Var(ŵ(S)) <= Σ_{e∈S} w_e²/p_e
    <= (ε²/c)·Σ_{e∈S} w_e·k_e <= (ε²/c)·w(S)², because each crossing edge's
    connectivity is at most the cut value; Chebyshev then gives a (1 ± O(ε))
    estimate for each fixed cut with constant probability — the for-each
    guarantee, with no union-bound log n oversampling (the factor separating
    this from the for-all sampler at equal ε).

    Note: the asymptotically optimal Õ(n/ε) for-each sketch of ACK+16
    requires a multi-level construction not reproduced here; DESIGN.md
    records the substitution. *)

val sparsify :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> Dcs_graph.Ugraph.t -> Dcs_graph.Ugraph.t

val sketch :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> Dcs_graph.Ugraph.t -> Sketch.t

val expected_edges : ?c:float -> eps:float -> Dcs_graph.Ugraph.t -> float

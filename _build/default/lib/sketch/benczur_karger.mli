(** Benczúr–Karger cut sparsification for undirected graphs (the for-all
    upper bound the paper's introduction cites, Õ(n/ε²) edges).

    Each edge is kept with probability p_e = min(1, c·w_e·ln n / (ε²·k_e)) where
    k_e is the Nagamochi–Ibaraki forest index (a lower estimate of the
    edge's local connectivity) and reweighted by 1/p_e. With the standard
    analysis, all cuts are preserved within (1 ± ε) with high probability.

    The oversampling constant [c] trades failure probability against size;
    the default (4.0) keeps laptop-scale experiments reliable. *)

val sparsify :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> Dcs_graph.Ugraph.t -> Dcs_graph.Ugraph.t

val sketch :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> Dcs_graph.Ugraph.t -> Sketch.t
(** Graph-valued sketch (symmetric digraph of the sparsifier) whose
    [size_bits] is the canonical encoding of the sparsifier. *)

val expected_edges :
  ?c:float -> eps:float -> Dcs_graph.Ugraph.t -> float
(** Predicted sample size for the given parameters. *)

(** Generic importance sampling of edges: keep edge e with probability p_e,
    reweight kept edges by w_e / p_e (unbiased for every cut). *)

val sample_ugraph :
  Dcs_util.Prng.t ->
  prob:(int -> int -> float -> float) ->
  Dcs_graph.Ugraph.t ->
  Dcs_graph.Ugraph.t

val sample_digraph :
  Dcs_util.Prng.t ->
  prob:(int -> int -> float -> float) ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t

val expected_edges_ugraph :
  prob:(int -> int -> float -> float) -> Dcs_graph.Ugraph.t -> float

val expected_edges_digraph :
  prob:(int -> int -> float -> float) -> Dcs_graph.Digraph.t -> float

(** Nagamochi–Ibaraki forest decomposition and edge-strength estimates.

    A spanning-forest decomposition assigns every edge an index: compute a
    maximal spanning forest, give its edges index 1, remove them, and
    repeat. An edge whose index is k connects two vertices that are at least
    k-edge-connected in the graph, so the index is a valid lower estimate of
    the edge's local connectivity — exactly what Benczúr–Karger-style
    sampling needs (sampling probabilities may only *over*estimate
    importance, never underestimate it).

    Integer edge weights are treated as multiplicities: an edge of weight w
    may be used by w consecutive forests and receives the index of the
    forest that exhausts it. *)

type t

val compute : ?max_rounds:int -> Dcs_graph.Ugraph.t -> t
(** Weights are rounded to integer multiplicities (minimum 1).
    [max_rounds] caps the number of forests (default 512); surviving edges
    get index [max_rounds], still a valid lower estimate. *)

val index : t -> int -> int -> int
(** NI index of edge (u, v); raises [Not_found] for a non-edge. *)

val rounds_used : t -> int

val fold : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (u, v, index) with u < v. *)

val min_index : t -> int
val max_index : t -> int

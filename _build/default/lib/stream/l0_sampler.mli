(** ℓ₀-samplers: linear sketches that recover one coordinate from the
    support of a dynamically-updated vector.

    The sketch maintains, for geometrically-sampled sub-universes
    (level j keeps each index with probability 2^-j), the triple
    (count, index-sum, fingerprint). When a level's surviving sub-vector is
    exactly 1-sparse, the coordinate is (index-sum / count) and the
    fingerprint validates it; some level is 1-sparse with constant
    probability whenever the vector is nonzero. The structure is *linear*:
    sketches of two vectors can be merged by addition, which is what lets
    the AGM connectivity sketch sum vertex sketches over a component and
    obtain a sketch of its outgoing edges (internal edges cancel).

    Supports insert/delete (±1 updates), as in turnstile graph streams. *)

type t

val create : Dcs_util.Prng.t -> universe:int -> t
(** Sketch over vectors indexed by 0..universe-1. The given PRNG seeds the
    hash functions; two sketches can only be merged if they were created
    from the same seed stream position (use [create_family]). *)

val create_family : Dcs_util.Prng.t -> universe:int -> count:int -> t array
(** [count] sketches sharing hash functions (mergeable with one another),
    each with independent level hashes... see [merge]. All sketches in the
    family use the same hashes, so family members are pairwise mergeable. *)

val update : t -> int -> int -> unit
(** [update s i delta] adds [delta] to coordinate [i]. *)

val merge_into : dst:t -> t -> unit
(** Pointwise addition; sketches must come from the same family. *)

val copy : t -> t

val query : t -> (int * int) option
(** [Some (i, c)] with high constant probability when the vector is
    nonzero: a support coordinate and its value. [None] when the vector
    appears to be zero or no level is currently 1-sparse. *)

val is_zero : t -> bool
(** True iff every level is empty (exact for the zero vector; a nonzero
    vector is declared zero only on hash collisions that cancel, which the
    fingerprints make vanishingly unlikely). *)

val size_bits : t -> int
(** Honest serialized size: 3 machine words per level. *)

module Prng = Dcs_util.Prng

type t = {
  size : int;
  rounds : int;
  copies : int;
  (* samplers.(r).(c).(u): vertex u's sampler, round r, copy c. Each
     (round, copy) pair is one family so component sketches can merge. *)
  samplers : L0_sampler.t array array array;
}

let edge_index ~n u v =
  if u = v || u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Agm_sketch: edge";
  let a = min u v and b = max u v in
  (a * n) + b

let create ?(copies = 3) ?(rounds = 0) rng ~n =
  if n < 1 then invalid_arg "Agm_sketch.create: n";
  let rounds =
    if rounds > 0 then rounds
    else 2 + int_of_float (Float.ceil (Dcs_util.Stats.log2 (float_of_int (max 2 n))))
  in
  let universe = n * n in
  {
    size = n;
    rounds;
    copies;
    samplers =
      Array.init rounds (fun _ ->
          Array.init copies (fun _ ->
              L0_sampler.create_family rng ~universe ~count:n));
  }

let n t = t.size

let update t u v delta =
  let idx = edge_index ~n:t.size u v in
  (* +1 on the smaller endpoint's vector, -1 on the larger's: summing the
     two cancels, which is exactly what makes internal edges vanish. *)
  let lo = min u v and hi = max u v in
  for r = 0 to t.rounds - 1 do
    for c = 0 to t.copies - 1 do
      L0_sampler.update t.samplers.(r).(c).(lo) idx delta;
      L0_sampler.update t.samplers.(r).(c).(hi) idx (-delta)
    done
  done

let add_edge t u v = update t u v 1
let remove_edge t u v = update t u v (-1)

let decode_edge t idx =
  let u = idx / t.size and v = idx mod t.size in
  (u, v)

(* Union-find for the Boruvka merge. *)
let rec find parent x =
  if parent.(x) = x then x
  else begin
    parent.(x) <- find parent parent.(x);
    parent.(x)
  end

let spanning_forest t =
  let n = t.size in
  let parent = Array.init n (fun i -> i) in
  let forest = ref [] in
  let classes = ref n in
  let r = ref 0 in
  let progress = ref true in
  while !classes > 1 && !r < t.rounds && !progress do
    progress := false;
    (* Merge this round's sketches per current component, one copy at a
       time, stopping at the first copy that decodes. *)
    let members = Hashtbl.create n in
    for v = 0 to n - 1 do
      let root = find parent v in
      let l = Option.value (Hashtbl.find_opt members root) ~default:[] in
      Hashtbl.replace members root (v :: l)
    done;
    let found = ref [] in
    Hashtbl.iter
      (fun root vs ->
        let rec try_copy c =
          if c >= t.copies then ()
          else begin
            let acc = L0_sampler.copy t.samplers.(!r).(c).(root) in
            List.iter
              (fun v ->
                if v <> root then
                  L0_sampler.merge_into ~dst:acc t.samplers.(!r).(c).(v))
              vs;
            match L0_sampler.query acc with
            | Some (idx, _) -> found := decode_edge t idx :: !found
            | None -> try_copy (c + 1)
          end
        in
        try_copy 0)
      members;
    List.iter
      (fun (u, v) ->
        let ru = find parent u and rv = find parent v in
        if ru <> rv then begin
          parent.(ru) <- rv;
          decr classes;
          forest := (u, v) :: !forest;
          progress := true
        end)
      !found;
    incr r
  done;
  !forest

let components_after_forest t forest =
  let parent = Array.init t.size (fun i -> i) in
  List.iter
    (fun (u, v) ->
      let ru = find parent u and rv = find parent v in
      if ru <> rv then parent.(ru) <- rv)
    forest;
  (* relabel densely *)
  let labels = Hashtbl.create 16 in
  Array.init t.size (fun v ->
      let root = find parent v in
      match Hashtbl.find_opt labels root with
      | Some l -> l
      | None ->
          let l = Hashtbl.length labels in
          Hashtbl.replace labels root l;
          l)

let connected t = List.length (spanning_forest t) = t.size - 1

let size_bits t =
  let acc = ref 0 in
  Array.iter
    (fun per_round ->
      Array.iter
        (fun family -> Array.iter (fun s -> acc := !acc + L0_sampler.size_bits s) family)
        per_round)
    t.samplers;
  !acc

(** AGM graph sketching (Ahn–Guha–McGregor, PODS 2012) — the linear-
    measurement framework the paper's introduction places itself in.

    Each vertex u carries O(log n) independent ℓ₀-samplers over its signed
    edge-incidence vector (entry +1 at index of edge (u,v) when u < v,
    -1 when u > v). Because the samplers are linear, the sum of the
    sketches over any vertex set S is a sketch of the edges crossing
    (S, V\S): internal edges cancel. Boruvka rounds over merged component
    sketches then recover a spanning forest — and hence connectivity — of
    a graph presented as a stream of edge insertions and deletions, using
    O(n·polylog n) bits in total.

    Unweighted, simple graphs; each (u,v) should have net multiplicity 0
    or 1 at query time (turnstile semantics). *)

type t

val create : ?copies:int -> ?rounds:int -> Dcs_util.Prng.t -> n:int -> t
(** Sketch for an n-vertex graph. [rounds] bounds the Boruvka depth
    (default ceil(log2 n) + 2); [copies] is the per-round redundancy
    (default 3), trading size for decode success. *)

val n : t -> int

val add_edge : t -> int -> int -> unit
val remove_edge : t -> int -> int -> unit
(** Turnstile updates; removing an edge that was never inserted corrupts
    the sketch (as in the model). *)

val spanning_forest : t -> (int * int) list
(** Boruvka over the sketches: a spanning forest of the current graph,
    with high constant probability (per-component decode failures can
    truncate the forest; callers needing certainty re-run with more
    copies). Consumes fresh sampler rounds — can be called once. *)

val components_after_forest : t -> (int * int) list -> int array
(** Component labels implied by a recovered forest. *)

val connected : t -> bool
(** [spanning_forest] has n-1 edges. *)

val size_bits : t -> int
(** Total sketch size. *)

val edge_index : n:int -> int -> int -> int
(** The universe index used for edge (u,v); exposed for tests. *)

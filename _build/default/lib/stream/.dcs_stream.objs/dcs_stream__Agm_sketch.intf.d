lib/stream/agm_sketch.mli: Dcs_util

lib/stream/agm_sketch.ml: Array Dcs_util Float Hashtbl L0_sampler List Option

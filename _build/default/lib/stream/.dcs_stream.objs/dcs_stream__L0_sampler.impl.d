lib/stream/l0_sampler.ml: Array Dcs_util

lib/stream/l0_sampler.mli: Dcs_util

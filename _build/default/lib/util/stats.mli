(** Small statistics toolkit used by tests and the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 when n < 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation on the sorted
    copy. Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val min_max : float array -> float * float

val success_rate : bool array -> float
(** Fraction of [true] entries. *)

val binomial_confidence_99 : trials:int -> float
(** Half-width of a 99% normal-approximation confidence interval for a
    success-rate estimate over [trials] Bernoulli trials (worst case p=1/2):
    2.576 * sqrt(0.25/trials). *)

val log2 : float -> float

val linear_regression : (float * float) array -> float * float
(** [linear_regression pts] returns [(slope, intercept)] of the least-squares
    line. Used for log-log slope estimation in scaling experiments. Requires
    at least two points with distinct x. *)

val loglog_slope : (float * float) array -> float
(** Slope of log y against log x; all coordinates must be positive. *)

val histogram : bins:int -> float array -> (float * int) array
(** Equal-width histogram: [(left_edge, count)] per bin. *)

(** Text ↔ sign-string conversion for the "message in a graph" demos: a
    byte becomes eight {-1,+1} entries, most significant bit first (the
    alphabet of the Section 3 encoder). *)

val to_signs : string -> int array
(** Length 8·|s|, entries in {-1,+1}. *)

val of_signs : int array -> string
(** Inverse; length must be a multiple of 8. Nonpositive entries read as
    0-bits, positive as 1-bits (so a noisy decode still yields bytes). *)

(** Aligned plain-text tables for the benchmark harness.

    The benches print paper-style result tables to stdout; this module keeps
    the formatting in one place so every experiment renders consistently. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption row and fixed column headers. *)

val add_row : t -> string list -> unit
(** Rows must match the column count. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string

val print : t -> unit
(** [render] followed by a trailing newline on stdout. *)

(** Cell formatting helpers. *)

val fint : int -> string
val ffloat : ?digits:int -> float -> string
val fpct : float -> string
(** Percentage with one decimal, e.g. [fpct 0.953 = "95.3%"]. *)

val fsci : float -> string
(** Scientific-ish compact float, e.g. "1.23e+06". *)

val fbool : bool -> string
(** "yes" / "no". *)

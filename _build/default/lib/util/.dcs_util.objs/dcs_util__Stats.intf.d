lib/util/stats.mli:

lib/util/table.ml: Array Buffer Char List Printf String

lib/util/table.mli:

lib/util/bits.mli:

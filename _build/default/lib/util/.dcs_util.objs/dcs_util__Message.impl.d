lib/util/message.ml: Array Char String

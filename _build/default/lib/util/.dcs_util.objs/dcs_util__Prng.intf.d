lib/util/prng.mli:

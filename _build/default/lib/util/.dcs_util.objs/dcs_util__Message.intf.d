lib/util/message.mli:

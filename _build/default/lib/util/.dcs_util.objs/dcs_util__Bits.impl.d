lib/util/bits.ml:

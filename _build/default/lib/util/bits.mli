(** Bit-level size accounting.

    Lower bounds in the paper are stated in bits, so every sketch in this
    library reports an honest serialized size via a [Bits.counter]: a write-
    only stream that records exactly how many bits a canonical encoding of
    the data structure would occupy. Helpers are provided for the usual
    primitive encodings (fixed-width ints, Elias gamma for unbounded ints,
    IEEE doubles). *)

type counter

val create : unit -> counter

val total : counter -> int
(** Bits written so far. *)

val total_bytes : counter -> int
(** Rounded-up byte count. *)

val add : counter -> int -> unit
(** Record [n] raw bits. *)

val write_bool : counter -> bool -> unit

val write_fixed : counter -> width:int -> int -> unit
(** [write_fixed c ~width v] records a [width]-bit unsigned field; checks
    that [v] fits. *)

val write_float : counter -> float -> unit
(** 64 bits. *)

val write_gamma : counter -> int -> unit
(** Elias gamma code for a positive integer: 2*floor(log2 v) + 1 bits. *)

val write_nonneg : counter -> int -> unit
(** Gamma code of [v + 1]: handles zero. *)

val bits_for_range : int -> int
(** [bits_for_range n] is the width needed to address [n] distinct values,
    i.e. ceil(log2 n) with [bits_for_range 1 = 0]. *)

val gamma_size : int -> int
(** Size in bits of the gamma code of a positive integer. *)

type counter = { mutable bits : int }

let create () = { bits = 0 }
let total c = c.bits
let total_bytes c = (c.bits + 7) / 8
let add c n =
  if n < 0 then invalid_arg "Bits.add: negative";
  c.bits <- c.bits + n

let write_bool c _ = add c 1

let bits_for_range n =
  if n <= 0 then invalid_arg "Bits.bits_for_range";
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let write_fixed c ~width v =
  if width < 0 || width > 62 then invalid_arg "Bits.write_fixed: width";
  if v < 0 || (width < 62 && v lsr width <> 0) then
    invalid_arg "Bits.write_fixed: value out of range";
  add c width

let write_float c _ = add c 64

let gamma_size v =
  if v <= 0 then invalid_arg "Bits.gamma_size: positive required";
  let rec log2floor acc v = if v = 1 then acc else log2floor (acc + 1) (v lsr 1) in
  (2 * log2floor 0 v) + 1

let write_gamma c v = add c (gamma_size v)
let write_nonneg c v = write_gamma c (v + 1)

let to_signs s =
  let out = Array.make (8 * String.length s) (-1) in
  String.iteri
    (fun i ch ->
      let c = Char.code ch in
      for b = 0 to 7 do
        if (c lsr (7 - b)) land 1 = 1 then out.((i * 8) + b) <- 1
      done)
    s;
  out

let of_signs bits =
  let n = Array.length bits in
  if n mod 8 <> 0 then invalid_arg "Message.of_signs: length not a multiple of 8";
  String.init (n / 8) (fun i ->
      let c = ref 0 in
      for b = 0 to 7 do
        c := (!c lsl 1) lor (if bits.((i * 8) + b) > 0 then 1 else 0)
      done;
      Char.chr !c)

test/test_util.ml: Alcotest Array Bits Dcs Float Hashtbl List Message Prng Stats String Table

test/test_forall_lb.ml: Alcotest Array Balance Bitstring Cut Dcs Digraph Exact_sketch Forall_lb Gap_hamming Layout List Noisy_oracle Printf Prng QCheck QCheck_alcotest Sketch Traversal

test/test_linalg.ml: Alcotest Array Dcs Decode_matrix Float Hadamard Pm_vector Printf Prng QCheck QCheck_alcotest

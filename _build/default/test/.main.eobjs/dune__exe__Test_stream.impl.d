test/test_stream.ml: Agm_sketch Alcotest Array Dcs Dcs_graph Generators Hashtbl L0_sampler List Prng QCheck QCheck_alcotest Ugraph

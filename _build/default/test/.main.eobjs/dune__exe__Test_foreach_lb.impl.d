test/test_foreach_lb.ml: Alcotest Array Balance Cut Dcs Digraph Exact_sketch Foreach_lb Index_game Layout List Noisy_oracle Printf Prng QCheck QCheck_alcotest Sketch Traversal

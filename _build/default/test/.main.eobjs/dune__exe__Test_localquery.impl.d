test/test_localquery.ml: Alcotest Array Bitstring Dcs Dcs_graph Dinic Estimator Float Gxy List Oracle Prng QCheck QCheck_alcotest Reduction Stoer_wagner String Two_sum Ugraph Verify_guess

test/test_graph.ml: Alcotest Array Balance Cut Dcs Dcs_mincut Digraph Eulerian Float Generators List Prng QCheck QCheck_alcotest Serialize Traversal Ugraph

test/test_comm.ml: Alcotest Array Bitstring Channel Dcs Float Gap_hamming Index_game Prng QCheck QCheck_alcotest Two_sum

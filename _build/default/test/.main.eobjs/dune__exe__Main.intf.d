test/main.mli:

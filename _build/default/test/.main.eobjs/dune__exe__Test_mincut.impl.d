test/test_mincut.ml: Alcotest Brute Cut Dcs Digraph Dinic Float Generators Gomory_hu Karger Karger_stein List Printf Prng QCheck QCheck_alcotest Stoer_wagner Ugraph

test/test_distributed.ml: Alcotest Array Coordinator Dcs Dcs_graph Float Partition Prng QCheck QCheck_alcotest Stoer_wagner Ugraph

test/test_spectral.ml: Alcotest Array Cut Dcs Float Generators Hashtbl Laplacian Prng QCheck QCheck_alcotest Resistance Spectral_sparsifier Ugraph

open Dcs

(* --- Hadamard --- *)

let test_h1 () =
  let h = Hadamard.create 0 in
  Alcotest.(check int) "order" 1 (Hadamard.order h);
  Alcotest.(check int) "entry" 1 (Hadamard.entry h 0 0)

let test_h2_explicit () =
  let h = Hadamard.create 1 in
  Alcotest.(check (array int)) "row 0" [| 1; 1 |] (Hadamard.row h 0);
  Alcotest.(check (array int)) "row 1" [| 1; -1 |] (Hadamard.row h 1)

let test_h4_explicit () =
  let h = Hadamard.create 2 in
  Alcotest.(check (array int)) "row 0" [| 1; 1; 1; 1 |] (Hadamard.row h 0);
  Alcotest.(check (array int)) "row 1" [| 1; -1; 1; -1 |] (Hadamard.row h 1);
  Alcotest.(check (array int)) "row 2" [| 1; 1; -1; -1 |] (Hadamard.row h 2);
  Alcotest.(check (array int)) "row 3" [| 1; -1; -1; 1 |] (Hadamard.row h 3)

let test_first_row_ones () =
  for k = 0 to 6 do
    let h = Hadamard.create k in
    Array.iter
      (fun v -> Alcotest.(check int) "all ones" 1 v)
      (Hadamard.row h 0)
  done

let test_orthogonality () =
  for k = 1 to 5 do
    let h = Hadamard.create k in
    let q = Hadamard.order h in
    for i = 0 to q - 1 do
      for j = 0 to q - 1 do
        let expected = if i = j then q else 0 in
        Alcotest.(check int) (Printf.sprintf "k=%d <H%d,H%d>" k i j) expected
          (Hadamard.dot_rows h i j)
      done
    done
  done

let test_symmetry () =
  let h = Hadamard.create 4 in
  for i = 0 to 15 do
    for j = 0 to 15 do
      Alcotest.(check int) "symmetric" (Hadamard.entry h i j) (Hadamard.entry h j i)
    done
  done

let test_fwht_matches_direct () =
  let k = 3 in
  let h = Hadamard.create k in
  let q = Hadamard.order h in
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let v = Array.init q (fun _ -> Prng.float rng 2.0 -. 1.0) in
    let direct =
      Array.init q (fun i ->
          let acc = ref 0.0 in
          for j = 0 to q - 1 do
            acc := !acc +. (float_of_int (Hadamard.entry h i j) *. v.(j))
          done;
          !acc)
    in
    let fast = Array.copy v in
    Hadamard.fwht_in_place fast;
    Array.iteri
      (fun i x -> Alcotest.(check (float 1e-9)) "fwht = direct" direct.(i) x)
      fast
  done

let test_fwht_involution () =
  let q = 16 in
  let rng = Prng.create 6 in
  let v = Array.init q (fun _ -> Prng.float rng 1.0) in
  let w = Array.copy v in
  Hadamard.fwht_in_place w;
  Hadamard.fwht_in_place w;
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-9)) "H(Hv) = q v" (float_of_int q *. v.(i)) x)
    w

let test_fwht_rejects_bad_length () =
  Alcotest.check_raises "length" (Invalid_argument "Hadamard.fwht_in_place: length")
    (fun () -> Hadamard.fwht_in_place (Array.make 3 0.0))

(* --- Pm_vector --- *)

let test_pm_validation () =
  Alcotest.check_raises "bad entry" (Invalid_argument "Pm_vector.of_array")
    (fun () -> ignore (Pm_vector.of_array [| 1; 0; -1 |]))

let test_pm_dot_tensor () =
  let u = Pm_vector.of_array [| 1; -1 |] in
  let v = Pm_vector.of_array [| 1; 1; -1; -1 |] in
  Alcotest.(check int) "self dot" 2 (Pm_vector.dot u u);
  let t = Pm_vector.tensor u v in
  Alcotest.(check (array int)) "tensor"
    [| 1; 1; -1; -1; -1; -1; 1; 1 |] t;
  Alcotest.(check int) "tensor sum" 0 (Pm_vector.sum t)

let test_pm_supports () =
  let v = Pm_vector.of_array [| 1; -1; 1; -1 |] in
  Alcotest.(check (array int)) "positive" [| 0; 2 |] (Pm_vector.positive_support v);
  Alcotest.(check (array int)) "negative" [| 1; 3 |] (Pm_vector.negative_support v);
  Alcotest.(check bool) "balanced" true (Pm_vector.is_balanced v)

let test_pm_dot_float () =
  let v = Pm_vector.of_array [| 1; -1 |] in
  Alcotest.(check (float 1e-9)) "dot_float" (-1.0) (Pm_vector.dot_float v [| 2.0; 3.0 |])

(* --- Decode_matrix: the three conditions of Lemma 3.2 --- *)

let test_lemma32_condition1_row_sums () =
  for k = 1 to 4 do
    let m = Decode_matrix.create ~k in
    for t = 0 to Decode_matrix.rows m - 1 do
      Alcotest.(check int) "row sums to 0" 0 (Pm_vector.sum (Decode_matrix.row m t))
    done
  done

let test_lemma32_condition2_orthogonality () =
  for k = 1 to 3 do
    let m = Decode_matrix.create ~k in
    let r = Decode_matrix.rows m in
    for t = 0 to r - 1 do
      for t' = t + 1 to r - 1 do
        Alcotest.(check int) "orthogonal rows" 0
          (Pm_vector.dot (Decode_matrix.row m t) (Decode_matrix.row m t'))
      done
    done
  done

let test_lemma32_condition3_tensor_balanced () =
  for k = 1 to 4 do
    let m = Decode_matrix.create ~k in
    for t = 0 to Decode_matrix.rows m - 1 do
      let u, v = Decode_matrix.row_factors m t in
      Alcotest.(check bool) "u balanced" true (Pm_vector.is_balanced u);
      Alcotest.(check bool) "v balanced" true (Pm_vector.is_balanced v);
      Alcotest.(check (array int)) "row = u ⊗ v" (Pm_vector.tensor u v)
        (Decode_matrix.row m t)
    done
  done

let test_decode_matrix_shape () =
  let m = Decode_matrix.create ~k:3 in
  Alcotest.(check int) "q" 8 (Decode_matrix.q m);
  Alcotest.(check int) "rows" 49 (Decode_matrix.rows m);
  Alcotest.(check int) "cols" 64 (Decode_matrix.cols m);
  Alcotest.(check int) "norm" 64 (Decode_matrix.row_norm_sq m)

let test_superpose_matches_direct_sum () =
  let m = Decode_matrix.create ~k:2 in
  let rng = Prng.create 12 in
  for _ = 1 to 20 do
    let z = Array.init (Decode_matrix.rows m) (fun _ -> Prng.sign rng) in
    let x = Decode_matrix.superpose m z in
    let direct = Array.make (Decode_matrix.cols m) 0.0 in
    Array.iteri
      (fun t zt ->
        let row = Decode_matrix.row m t in
        Array.iteri
          (fun c e -> direct.(c) <- direct.(c) +. float_of_int (zt * e))
          row)
      z;
    Array.iteri
      (fun c v -> Alcotest.(check (float 1e-9)) "superpose" direct.(c) v)
      x
  done

let test_correlate_recovers_signs () =
  (* The heart of the Section 3 decoding: ⟨superpose z, M_t⟩ = z_t · q². *)
  let m = Decode_matrix.create ~k:3 in
  let rng = Prng.create 23 in
  for _ = 1 to 10 do
    let z = Array.init (Decode_matrix.rows m) (fun _ -> Prng.sign rng) in
    let x = Decode_matrix.superpose m z in
    for t = 0 to Decode_matrix.rows m - 1 do
      Alcotest.(check (float 1e-9)) "correlation"
        (float_of_int (z.(t) * Decode_matrix.row_norm_sq m))
        (Decode_matrix.correlate m x t)
    done
  done

let test_correlate_orthogonal_noise () =
  (* Adding a constant (all-ones direction) must not disturb correlations. *)
  let m = Decode_matrix.create ~k:2 in
  let rng = Prng.create 3 in
  let z = Array.init (Decode_matrix.rows m) (fun _ -> Prng.sign rng) in
  let x = Decode_matrix.superpose m z in
  let shifted = Array.map (fun v -> v +. 42.0) x in
  for t = 0 to Decode_matrix.rows m - 1 do
    Alcotest.(check (float 1e-6)) "shift-invariant"
      (float_of_int (z.(t) * Decode_matrix.row_norm_sq m))
      (Decode_matrix.correlate m shifted t)
  done

(* qcheck property: Lemma 3.2 conditions for random row pairs at k = 4. *)
let prop_rows_orthogonal_k4 =
  QCheck.Test.make ~name:"decode matrix rows orthogonal (k=4)" ~count:200
    QCheck.(pair (int_bound 224) (int_bound 224))
    (fun (t, t') ->
      let m = Decode_matrix.create ~k:4 in
      let d = Pm_vector.dot (Decode_matrix.row m t) (Decode_matrix.row m t') in
      if t = t' then d = Decode_matrix.row_norm_sq m else d = 0)

let prop_superpose_correlate_roundtrip =
  QCheck.Test.make ~name:"superpose/correlate roundtrip (k=3)" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 48))
    (fun (seed, t) ->
      let m = Decode_matrix.create ~k:3 in
      let rng = Prng.create seed in
      let z = Array.init (Decode_matrix.rows m) (fun _ -> Prng.sign rng) in
      let x = Decode_matrix.superpose m z in
      let v = Decode_matrix.correlate m x t in
      Float.abs (v -. float_of_int (z.(t) * 64)) < 1e-6)

let suite =
  [
    Alcotest.test_case "hadamard: H_1" `Quick test_h1;
    Alcotest.test_case "hadamard: H_2 explicit" `Quick test_h2_explicit;
    Alcotest.test_case "hadamard: H_4 explicit" `Quick test_h4_explicit;
    Alcotest.test_case "hadamard: first row ones" `Quick test_first_row_ones;
    Alcotest.test_case "hadamard: orthogonality" `Quick test_orthogonality;
    Alcotest.test_case "hadamard: symmetry" `Quick test_symmetry;
    Alcotest.test_case "hadamard: fwht matches direct" `Quick test_fwht_matches_direct;
    Alcotest.test_case "hadamard: fwht involution" `Quick test_fwht_involution;
    Alcotest.test_case "hadamard: fwht bad length" `Quick test_fwht_rejects_bad_length;
    Alcotest.test_case "pm_vector: validation" `Quick test_pm_validation;
    Alcotest.test_case "pm_vector: dot/tensor" `Quick test_pm_dot_tensor;
    Alcotest.test_case "pm_vector: supports" `Quick test_pm_supports;
    Alcotest.test_case "pm_vector: dot_float" `Quick test_pm_dot_float;
    Alcotest.test_case "lemma 3.2 (1): row sums" `Quick test_lemma32_condition1_row_sums;
    Alcotest.test_case "lemma 3.2 (2): orthogonality" `Quick test_lemma32_condition2_orthogonality;
    Alcotest.test_case "lemma 3.2 (3): tensor factors" `Quick test_lemma32_condition3_tensor_balanced;
    Alcotest.test_case "decode matrix: shape" `Quick test_decode_matrix_shape;
    Alcotest.test_case "decode matrix: superpose" `Quick test_superpose_matches_direct_sum;
    Alcotest.test_case "decode matrix: correlate recovers" `Quick test_correlate_recovers_signs;
    Alcotest.test_case "decode matrix: shift invariance" `Quick test_correlate_orthogonal_noise;
    QCheck_alcotest.to_alcotest prop_rows_orthogonal_k4;
    QCheck_alcotest.to_alcotest prop_superpose_correlate_roundtrip;
  ]

open Dcs
module F = Foreach_lb

let check_float = Alcotest.(check (float 1e-9))

let small_params () = F.make_params ~beta:4 ~inv_eps:4 32
(* beta=4 -> sqrt_beta=2; block = 2*4 = 8; chains = 4. *)

(* --- parameter validation --- *)

let test_params_derived () =
  let p = small_params () in
  Alcotest.(check int) "block" 8 (F.block_size p);
  Alcotest.(check int) "sqrt beta" 2 (F.sqrt_beta p);
  check_float "eps" 0.25 (F.eps p);
  Alcotest.(check int) "bits/cluster" 9 ((F.bits_per_pair p) / 4);
  Alcotest.(check int) "capacity" (4 * 9 * 3) (F.bits_capacity p)

let test_params_validation () =
  Alcotest.check_raises "beta not square"
    (Invalid_argument "Foreach_lb: beta must be a perfect square") (fun () ->
      ignore (F.make_params ~beta:3 ~inv_eps:4 32));
  Alcotest.check_raises "inv_eps not power of 2"
    (Invalid_argument "Foreach_lb: 1/eps must be a power of two >= 2") (fun () ->
      ignore (F.make_params ~beta:4 ~inv_eps:6 32));
  Alcotest.check_raises "n not multiple"
    (Invalid_argument
       "Foreach_lb: n (30) must be a multiple of block 8 with at least 2 blocks")
    (fun () -> ignore (F.make_params ~beta:4 ~inv_eps:4 30))

let test_address_roundtrip () =
  let p = small_params () in
  for q = 0 to F.bits_capacity p - 1 do
    let a = F.address_of_index p q in
    Alcotest.(check int) "roundtrip" q (F.index_of_address p a)
  done

let test_address_ranges () =
  let p = small_params () in
  for q = 0 to F.bits_capacity p - 1 do
    let a = F.address_of_index p q in
    Alcotest.(check bool) "pair range" true (a.F.pair >= 0 && a.F.pair < 3);
    Alcotest.(check bool) "cluster range" true
      (a.F.ci >= 0 && a.F.ci < 2 && a.F.cj >= 0 && a.F.cj < 2);
    Alcotest.(check bool) "t range" true (a.F.t >= 0 && a.F.t < 9)
  done

(* --- encoding --- *)

let random_inst seed p =
  let rng = Prng.create seed in
  F.random_instance rng p

let test_encode_graph_shape () =
  let p = small_params () in
  let inst = random_inst 1 p in
  let g = inst.F.graph in
  Alcotest.(check int) "n" 32 (Digraph.n g);
  (* forward + backward between each of 3 consecutive pairs: 2 * 3 * 64 *)
  Alcotest.(check int) "m" (2 * 3 * 64) (Digraph.m g)

let test_encode_weight_range () =
  let p = small_params () in
  let inst = random_inst 2 p in
  let lo = F.weight_low p and hi = F.weight_high p in
  Digraph.iter_edges inst.F.graph (fun u v w ->
      let cu = u / F.block_size p and cv = v / F.block_size p in
      if cv = cu + 1 then
        (* forward edge *)
        Alcotest.(check bool) "forward in [c1 L, 3 c1 L]" true
          (w >= lo -. 1e-9 && w <= hi +. 1e-9)
      else begin
        Alcotest.(check int) "backward goes one block left" (cu - 1) cv;
        check_float "backward weight" (1.0 /. 4.0) w
      end)

let test_encode_strongly_connected () =
  let p = small_params () in
  let inst = random_inst 3 p in
  Alcotest.(check bool) "strongly connected" true
    (Traversal.is_strongly_connected inst.F.graph)

let test_encode_balance_certificate () =
  let p = small_params () in
  let inst = random_inst 4 p in
  Alcotest.(check bool) "edgewise balance within bound" true
    (Balance.edgewise_upper_bound inst.F.graph <= F.balance_upper_bound p +. 1e-9)

let test_encode_balance_sampled () =
  let p = small_params () in
  let inst = random_inst 5 p in
  let rng = Prng.create 50 in
  let b = Balance.sampled_lower_bound rng ~trials:100 inst.F.graph in
  Alcotest.(check bool) "sampled cuts within certificate" true
    (b <= F.balance_upper_bound p +. 1e-9)

let test_encode_deterministic () =
  let p = small_params () in
  let rng = Prng.create 6 in
  let s = Array.init (F.bits_capacity p) (fun _ -> Prng.sign rng) in
  let a = F.encode p ~s and b = F.encode p ~s in
  Alcotest.(check bool) "same graph" true (Digraph.equal a.F.graph b.F.graph)

let test_encode_rejects_bad_string () =
  let p = small_params () in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Foreach_lb.encode: wrong string length") (fun () ->
      ignore (F.encode p ~s:[| 1; -1 |]));
  let s = Array.make (F.bits_capacity p) 1 in
  s.(0) <- 0;
  Alcotest.check_raises "bad sign" (Invalid_argument "Foreach_lb.encode: signs")
    (fun () -> ignore (F.encode p ~s))

(* --- the queried cut (Figure 1 anatomy) --- *)

let test_query_cut_shape () =
  let p = small_params () in
  let a = { F.pair = 1; ci = 0; cj = 1; t = 2 } in
  let s11 = F.query_cut p a ~side_a:1 ~side_b:1 in
  (* |A| = 1/(2eps) = 2, plus |V_2 \ B| = 8 - 2 = 6, plus V_3 (8). *)
  Alcotest.(check int) "cardinality" (2 + 6 + 8) (Cut.cardinal s11);
  Alcotest.(check bool) "proper" true (Cut.is_proper s11)

let test_fixed_backward_matches_skeleton () =
  (* The closed-form backward weight must equal the actual crossing weight
     of the instance-independent backward skeleton. *)
  let p = small_params () in
  let lay = F.layout p in
  let skeleton = Layout.backward_skeleton lay ~weight:(1.0 /. 4.0) in
  List.iter
    (fun (pair, ci, cj, t) ->
      let a = { F.pair; ci; cj; t } in
      let expected = F.fixed_backward_weight p a in
      List.iter
        (fun (sa, sb) ->
          let s = F.query_cut p a ~side_a:sa ~side_b:sb in
          check_float
            (Printf.sprintf "pair=%d sides=%d,%d" pair sa sb)
            expected (Cut.value skeleton s))
        [ (1, 1); (1, -1); (-1, 1); (-1, -1) ])
    [ (0, 0, 0, 0); (0, 1, 1, 3); (1, 0, 1, 5); (2, 1, 0, 8) ]

let test_forward_crossing_is_a_to_b_only () =
  (* Cut value minus fixed backward equals exactly the weight from A to B. *)
  let p = small_params () in
  let inst = random_inst 7 p in
  let a = { F.pair = 0; ci = 1; cj = 0; t = 1 } in
  let s = F.query_cut p a ~side_a:1 ~side_b:(-1) in
  let cut_val = Cut.value inst.F.graph s in
  let back = F.fixed_backward_weight p a in
  (* Recompute w(A, B) directly. *)
  let lay = F.layout p in
  let direct = ref 0.0 in
  for u = 0 to 31 do
    for v = 0 to 31 do
      if Cut.mem s u && not (Cut.mem s v)
         && Layout.block_of_vertex lay u = 0
         && Layout.block_of_vertex lay v = 1 then
        direct := !direct +. Digraph.weight inst.F.graph u v
    done
  done;
  check_float "cut - back = w(A,B)" !direct (cut_val -. back)

(* --- decoding --- *)

let test_decode_all_bits_exact () =
  let p = small_params () in
  let inst = random_inst 8 p in
  let sk = Exact_sketch.create inst.F.graph in
  let wrong_in_ok_pairs = ref 0 in
  for q = 0 to F.bits_capacity p - 1 do
    let r = F.decode_bit p ~query:sk.Sketch.query q in
    Alcotest.(check int) "4 queries" 4 r.F.queries_used;
    if (not (F.failed_at inst q)) && r.F.decoded <> inst.F.s.(q) then
      incr wrong_in_ok_pairs
  done;
  Alcotest.(check int) "all healthy bits decode" 0 !wrong_in_ok_pairs

let test_decode_estimate_magnitude () =
  let p = small_params () in
  let inst = random_inst 9 p in
  let sk = Exact_sketch.create inst.F.graph in
  for q = 0 to min 30 (F.bits_capacity p - 1) do
    if not (F.failed_at inst q) then begin
      let r = F.decode_bit p ~query:sk.Sketch.query q in
      (* |<w, M_t>| = 1/eps = 4 exactly. *)
      check_float "estimate = z/eps" (float_of_int (inst.F.s.(q) * 4)) r.F.estimate
    end
  done

let test_decode_with_tiny_noise () =
  let p = F.make_params ~beta:1 ~inv_eps:8 32 in
  let rng = Prng.create 10 in
  let inst = F.random_instance rng p in
  let sk = Noisy_oracle.create rng ~eps:0.002 inst.F.graph in
  let correct = ref 0 in
  let total = 120 in
  for _ = 1 to total do
    let q = Prng.int rng (F.bits_capacity p) in
    let r = F.decode_bit p ~query:sk.Sketch.query q in
    if r.F.decoded = inst.F.s.(q) then incr correct
  done;
  Alcotest.(check bool) "noise below threshold: >= 90%" true
    (float_of_int !correct /. float_of_int total >= 0.9)

let test_decode_collapses_at_huge_noise () =
  let p = F.make_params ~beta:1 ~inv_eps:8 32 in
  let rng = Prng.create 11 in
  let inst = F.random_instance rng p in
  let sk = Noisy_oracle.create rng ~eps:0.5 inst.F.graph in
  let correct = ref 0 in
  let total = 300 in
  for _ = 1 to total do
    let q = Prng.int rng (F.bits_capacity p) in
    let r = F.decode_bit p ~query:sk.Sketch.query q in
    if r.F.decoded = inst.F.s.(q) then incr correct
  done;
  let rate = float_of_int !correct /. float_of_int total in
  Alcotest.(check bool) "within noise of chance" true (rate < 0.75)

let test_codec_bits_close_to_capacity () =
  let p = small_params () in
  let cap = F.bits_capacity p in
  let bits = F.codec_bits p in
  Alcotest.(check bool) "codec ~ capacity + header" true
    (bits >= cap && bits <= cap + 200)

let test_codec_sketch_answers_exactly () =
  let p = small_params () in
  let inst = random_inst 12 p in
  let sk = F.codec_sketch inst in
  let rng = Prng.create 13 in
  for _ = 1 to 20 do
    let c = Cut.random rng ~n:32 in
    check_float "codec = truth" (Cut.value inst.F.graph c) (sk.Sketch.query c)
  done

let test_run_trials_exact_high_success () =
  let rng = Prng.create 14 in
  let p = small_params () in
  let st =
    F.run_trials rng p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.F.graph)
      ~trials:5 ~bits_per_trial:20
  in
  Alcotest.(check bool) "success >= 0.9" true (st.F.success_rate >= 0.9);
  Alcotest.(check int) "bits tested" 100 st.F.bits_tested

let test_encode_failure_rate_low () =
  let rng = Prng.create 15 in
  let p = F.make_params ~beta:1 ~inv_eps:8 64 in
  let failures = ref 0 and pairs = ref 0 in
  for _ = 1 to 30 do
    let inst = F.random_instance rng p in
    Array.iter (fun b -> if b then incr failures) inst.F.failed;
    pairs := !pairs + Array.length inst.F.failed
  done;
  let rate = float_of_int !failures /. float_of_int !pairs in
  (* The paper wants <= 1% per cluster pair; c1 = 2 gives plenty of room. *)
  Alcotest.(check bool) "encode failures rare" true (rate <= 0.02)

(* --- the full Lemma 3.1 reduction, played as an Index protocol --- *)

let test_index_game_via_codec () =
  (* Alice's message is the instance codec (|s| + header bits); Bob decodes
     s_i with 4 cut queries against it. This is the reduction of Theorem
     1.1 run end-to-end through the Index harness of Lemma 3.1. *)
  let p = F.make_params ~beta:1 ~inv_eps:4 16 in
  let n_bits = F.bits_capacity p in
  let proto =
    {
      Index_game.encode =
        (fun s ->
          let inst = F.encode p ~s in
          (inst, F.codec_bits p));
      decode =
        (fun inst i ->
          let sk = F.codec_sketch inst in
          (F.decode_bit p ~query:sk.Sketch.query i).F.decoded);
    }
  in
  let rng = Prng.create 99 in
  let r = Index_game.play rng ~n:n_bits ~trials:40 proto in
  (* Codec queries are exact; only encode failures (rare) can cost bits. *)
  Alcotest.(check bool) "success >= 0.9" true (r.Index_game.success_rate >= 0.9);
  Alcotest.(check bool) "message ~ |s|" true
    (r.Index_game.mean_message_bits >= float_of_int n_bits)

(* --- Layout --- *)

let test_layout_arithmetic () =
  let lay = Layout.create ~n:24 ~block:8 in
  Alcotest.(check int) "chains" 3 lay.Layout.chains;
  Alcotest.(check int) "vertex" 17 (Layout.vertex lay ~chain:2 ~offset:1);
  Alcotest.(check int) "block of" 2 (Layout.block_of_vertex lay 17);
  Alcotest.(check int) "start" 8 (Layout.block_start lay 1)

let test_layout_skeleton_edge_count () =
  let lay = Layout.create ~n:24 ~block:8 in
  let sk = Layout.backward_skeleton lay ~weight:0.5 in
  (* two consecutive pairs, each complete bipartite backward: 2 * 64 *)
  Alcotest.(check int) "edges" 128 (Digraph.m sk);
  Alcotest.(check (float 1e-9)) "weights" 64.0 (Digraph.total_weight sk)

let test_layout_validation () =
  Alcotest.check_raises "one block"
    (Invalid_argument "Layout.create: need at least two blocks") (fun () ->
      ignore (Layout.create ~n:8 ~block:8))

(* qcheck: decode correctness for random instances and random bits. *)
let prop_decode_roundtrip =
  QCheck.Test.make ~name:"§3 encode/decode roundtrip (exact sketch)" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = F.make_params ~beta:1 ~inv_eps:4 16 in
      let inst = F.random_instance rng p in
      let sk = Exact_sketch.create inst.F.graph in
      let q = Prng.int rng (F.bits_capacity p) in
      F.failed_at inst q
      || (F.decode_bit p ~query:sk.Sketch.query q).F.decoded = inst.F.s.(q))

let prop_balance_certificate =
  QCheck.Test.make ~name:"§3 instances respect the balance certificate" ~count:10
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = F.make_params ~beta:4 ~inv_eps:4 16 in
      let inst = F.random_instance rng p in
      Balance.edgewise_upper_bound inst.F.graph <= F.balance_upper_bound p +. 1e-9)

let suite =
  [
    Alcotest.test_case "params: derived values" `Quick test_params_derived;
    Alcotest.test_case "params: validation" `Quick test_params_validation;
    Alcotest.test_case "address: roundtrip" `Quick test_address_roundtrip;
    Alcotest.test_case "address: ranges" `Quick test_address_ranges;
    Alcotest.test_case "encode: graph shape" `Quick test_encode_graph_shape;
    Alcotest.test_case "encode: weight ranges" `Quick test_encode_weight_range;
    Alcotest.test_case "encode: strongly connected" `Quick test_encode_strongly_connected;
    Alcotest.test_case "encode: balance certificate" `Quick test_encode_balance_certificate;
    Alcotest.test_case "encode: sampled balance" `Quick test_encode_balance_sampled;
    Alcotest.test_case "encode: deterministic" `Quick test_encode_deterministic;
    Alcotest.test_case "encode: input validation" `Quick test_encode_rejects_bad_string;
    Alcotest.test_case "query cut: shape (Figure 1)" `Quick test_query_cut_shape;
    Alcotest.test_case "fixed backward = skeleton crossing" `Quick test_fixed_backward_matches_skeleton;
    Alcotest.test_case "forward crossing = w(A,B)" `Quick test_forward_crossing_is_a_to_b_only;
    Alcotest.test_case "decode: all bits (exact)" `Quick test_decode_all_bits_exact;
    Alcotest.test_case "decode: estimate = z/eps" `Quick test_decode_estimate_magnitude;
    Alcotest.test_case "decode: robust to tiny noise" `Quick test_decode_with_tiny_noise;
    Alcotest.test_case "decode: collapses at huge noise" `Quick test_decode_collapses_at_huge_noise;
    Alcotest.test_case "codec: size ~ |s|" `Quick test_codec_bits_close_to_capacity;
    Alcotest.test_case "codec: exact answers" `Quick test_codec_sketch_answers_exactly;
    Alcotest.test_case "run_trials: exact sketch" `Quick test_run_trials_exact_high_success;
    Alcotest.test_case "encode failures rare" `Quick test_encode_failure_rate_low;
    Alcotest.test_case "index game via codec (Lemma 3.1)" `Quick test_index_game_via_codec;
    Alcotest.test_case "layout: arithmetic" `Quick test_layout_arithmetic;
    Alcotest.test_case "layout: skeleton" `Quick test_layout_skeleton_edge_count;
    Alcotest.test_case "layout: validation" `Quick test_layout_validation;
    QCheck_alcotest.to_alcotest prop_decode_roundtrip;
    QCheck_alcotest.to_alcotest prop_balance_certificate;
  ]

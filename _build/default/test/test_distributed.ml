open Dcs

let check_float = Alcotest.(check (float 1e-9))

let planted seed =
  let rng = Prng.create seed in
  Dcs_graph.Generators.planted_mincut rng ~block:40 ~k:5 ~p_inner:0.4

(* --- Partition --- *)

let test_partition_random_union_roundtrip () =
  let rng = Prng.create 1 in
  let g = planted 2 in
  let shards = Partition.random rng ~servers:4 g in
  Alcotest.(check int) "4 shards" 4 (Array.length shards);
  let merged = Partition.union (Ugraph.n g) shards in
  Alcotest.(check bool) "union restores graph" true (Ugraph.equal g merged)

let test_partition_hash_deterministic () =
  let g = planted 3 in
  let a = Partition.by_hash ~servers:3 g in
  let b = Partition.by_hash ~servers:3 g in
  Array.iteri
    (fun i shard -> Alcotest.(check bool) "same shard" true (Ugraph.equal shard b.(i)))
    a

let test_partition_edges_disjoint () =
  let rng = Prng.create 4 in
  let g = planted 5 in
  let shards = Partition.random rng ~servers:3 g in
  let total = Array.fold_left (fun acc s -> acc + Ugraph.m s) 0 shards in
  Alcotest.(check int) "edge counts add up" (Ugraph.m g) total;
  Ugraph.iter_edges g (fun u v _ ->
      let owners =
        Array.fold_left
          (fun acc s -> if Ugraph.mem_edge s u v then acc + 1 else acc)
          0 shards
      in
      Alcotest.(check int) "exactly one owner" 1 owners)

let test_partition_single_server () =
  let rng = Prng.create 6 in
  let g = planted 7 in
  let shards = Partition.random rng ~servers:1 g in
  Alcotest.(check bool) "identity" true (Ugraph.equal g shards.(0))

(* --- Coordinator --- *)

let test_coordinator_recovers_mincut () =
  let rng = Prng.create 8 in
  let g = planted 9 in
  let exact = Stoer_wagner.mincut_value g in
  let shards = Partition.random rng ~servers:4 g in
  let cfg = Coordinator.default_config ~eps:0.2 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "estimate close to exact" true
    (Float.abs (r.Coordinator.estimate -. exact) <= (0.3 *. exact) +. 1e-9);
  (* The returned witness cut should be near-minimum on the true graph. *)
  let true_val = Ugraph.cut_value g r.Coordinator.cut in
  Alcotest.(check bool) "witness near-minimum" true (true_val <= 1.5 *. exact)

let test_coordinator_bits_accounting () =
  let rng = Prng.create 10 in
  let g = planted 11 in
  let shards = Partition.random rng ~servers:2 g in
  let cfg = Coordinator.default_config ~eps:0.25 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check int) "total = forall + foreach"
    (r.Coordinator.forall_bits + r.Coordinator.foreach_bits)
    r.Coordinator.total_bits;
  Alcotest.(check bool) "positive" true (r.Coordinator.total_bits > 0);
  Alcotest.(check bool) "naive positive" true (r.Coordinator.naive_bits > 0)

let test_coordinator_candidates_nonempty () =
  let rng = Prng.create 12 in
  let g = planted 13 in
  let shards = Partition.random rng ~servers:3 g in
  let cfg = { (Coordinator.default_config ~eps:0.3) with Coordinator.karger_trials = 80 } in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "at least one candidate" true (r.Coordinator.candidates >= 1)

let test_coordinator_single_shard_matches () =
  (* One server holding everything: the pipeline reduces to sparsify+karger. *)
  let rng = Prng.create 14 in
  let g = planted 15 in
  let exact = Stoer_wagner.mincut_value g in
  let cfg = Coordinator.default_config ~eps:0.2 in
  let r = Coordinator.min_cut rng cfg [| g |] in
  Alcotest.(check bool) "close" true
    (Float.abs (r.Coordinator.estimate -. exact) <= (0.3 *. exact) +. 1e-9)

let test_coordinator_empty_shard_tolerated () =
  let rng = Prng.create 16 in
  let g = planted 17 in
  let shards = [| g; Ugraph.create (Ugraph.n g) |] in
  let cfg = Coordinator.default_config ~eps:0.25 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "still works" true (r.Coordinator.estimate > 0.0)

let test_coordinator_weighted_graph () =
  let rng = Prng.create 18 in
  let base = Dcs_graph.Generators.complete ~n:30 in
  let g = Dcs_graph.Generators.random_multigraph_weights rng base ~max_weight:10 in
  let exact = Stoer_wagner.mincut_value g in
  let shards = Partition.random rng ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.2 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "weighted close" true
    (Float.abs (r.Coordinator.estimate -. exact) <= (0.35 *. exact) +. 1e-9)

(* qcheck: the refined estimate never undercuts the true minimum cut by
   more than the sketch error (the candidate is a real cut, whose true
   value is >= mincut; the for-each estimate is within ~eps of it). *)
let prop_estimate_lower_bounded =
  QCheck.Test.make ~name:"distributed estimate >= (1-2eps)·mincut" ~count:8
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = planted (seed + 1000) in
      let exact = Stoer_wagner.mincut_value g in
      let shards = Partition.random rng ~servers:3 g in
      let cfg = Coordinator.default_config ~eps:0.2 in
      let r = Coordinator.min_cut rng cfg shards in
      r.Coordinator.estimate >= (1.0 -. 0.4) *. exact)

let suite =
  [
    Alcotest.test_case "partition: random roundtrip" `Quick test_partition_random_union_roundtrip;
    Alcotest.test_case "partition: hash deterministic" `Quick test_partition_hash_deterministic;
    Alcotest.test_case "partition: edges disjoint" `Quick test_partition_edges_disjoint;
    Alcotest.test_case "partition: single server" `Quick test_partition_single_server;
    Alcotest.test_case "coordinator: recovers mincut" `Quick test_coordinator_recovers_mincut;
    Alcotest.test_case "coordinator: bits accounting" `Quick test_coordinator_bits_accounting;
    Alcotest.test_case "coordinator: candidates" `Quick test_coordinator_candidates_nonempty;
    Alcotest.test_case "coordinator: single shard" `Quick test_coordinator_single_shard_matches;
    Alcotest.test_case "coordinator: empty shard" `Quick test_coordinator_empty_shard_tolerated;
    Alcotest.test_case "coordinator: weighted" `Quick test_coordinator_weighted_graph;
    QCheck_alcotest.to_alcotest prop_estimate_lower_bounded;
  ]

open Dcs

let check_float = Alcotest.(check (float 1e-6))

(* --- Laplacian --- *)

let test_laplacian_entries () =
  let g = Ugraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 3.0) ] in
  let l = Laplacian.of_ugraph g in
  check_float "diag 0" 2.0 (Laplacian.entry l 0 0);
  check_float "diag 1" 5.0 (Laplacian.entry l 1 1);
  check_float "off" (-2.0) (Laplacian.entry l 0 1);
  check_float "zero" 0.0 (Laplacian.entry l 0 2)

let test_laplacian_kernel () =
  let rng = Prng.create 1 in
  let g = Generators.erdos_renyi_connected rng ~n:12 ~p:0.3 in
  let l = Laplacian.of_ugraph g in
  let ones = Array.make 12 1.0 in
  Array.iter (fun v -> check_float "L·1 = 0" 0.0 v) (Laplacian.apply l ones)

let test_quadratic_form_explicit () =
  let g = Ugraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 3.0) ] in
  let l = Laplacian.of_ugraph g in
  (* x = (1, 0, 2): 2·(1-0)² + 3·(0-2)² = 14 *)
  check_float "form" 14.0 (Laplacian.quadratic_form l [| 1.0; 0.0; 2.0 |])

let test_quadratic_form_nonnegative () =
  let rng = Prng.create 2 in
  let g = Generators.erdos_renyi_connected rng ~n:10 ~p:0.4 in
  let l = Laplacian.of_ugraph g in
  for _ = 1 to 30 do
    let x = Array.init 10 (fun _ -> Prng.gaussian rng) in
    Alcotest.(check bool) "PSD" true (Laplacian.quadratic_form l x >= -1e-9)
  done

let test_cut_value_matches_graph () =
  let rng = Prng.create 3 in
  let g = Generators.erdos_renyi_connected rng ~n:11 ~p:0.35 in
  let l = Laplacian.of_ugraph g in
  for _ = 1 to 20 do
    let c = Cut.random rng ~n:11 in
    check_float "xᵀLx = cut" (Ugraph.cut_value g c) (Laplacian.cut_value l c)
  done

let test_solve_accuracy () =
  let rng = Prng.create 4 in
  let g = Generators.erdos_renyi_connected rng ~n:15 ~p:0.3 in
  let l = Laplacian.of_ugraph g in
  for _ = 1 to 5 do
    let b = Array.init 15 (fun _ -> Prng.gaussian rng) in
    let mean = Array.fold_left ( +. ) 0.0 b /. 15.0 in
    let b = Array.map (fun v -> v -. mean) b in
    let x = Laplacian.solve l b in
    let lx = Laplacian.apply l x in
    Array.iteri
      (fun i v -> Alcotest.(check (float 1e-5)) "Lx = b" b.(i) v)
      lx
  done

(* --- Effective resistance --- *)

let test_resistance_single_edge () =
  let g = Ugraph.of_edges 2 [ (0, 1, 4.0) ] in
  (* conductance 4 -> resistance 1/4 *)
  check_float "R = 1/w" 0.25 (Resistance.pair g 0 1)

let test_resistance_path_series () =
  (* resistances in series add: 1/2 + 1/3 *)
  let g = Ugraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 3.0) ] in
  check_float "series" (0.5 +. (1.0 /. 3.0)) (Resistance.pair g 0 2)

let test_resistance_parallel () =
  (* two unit edges in parallel via a multigraph weight 2 *)
  let g = Ugraph.of_edges 2 [ (0, 1, 2.0) ] in
  check_float "parallel" 0.5 (Resistance.pair g 0 1)

let test_resistance_cycle () =
  (* unit cycle of length 4: R across one edge = (1·3)/(1+3) = 3/4 *)
  let g = Generators.cycle ~n:4 in
  check_float "cycle" 0.75 (Resistance.pair g 0 1)

let test_foster_theorem () =
  let rng = Prng.create 5 in
  for _ = 1 to 5 do
    let g = Generators.erdos_renyi_connected rng ~n:14 ~p:0.3 in
    let g = Generators.random_multigraph_weights rng g ~max_weight:5 in
    Alcotest.(check (float 1e-4)) "Σ wR = n-1" 13.0 (Resistance.foster_sum g)
  done

let test_all_edges_consistent_with_pair () =
  let rng = Prng.create 6 in
  let g = Generators.erdos_renyi_connected rng ~n:10 ~p:0.35 in
  let all = Resistance.all_edges g in
  Ugraph.iter_edges g (fun u v _ ->
      Alcotest.(check (float 1e-5)) "matches pair"
        (Resistance.pair g u v)
        (Hashtbl.find all (min u v, max u v)))

(* --- Spectral sparsifier --- *)

let test_spectral_sparsifier_preserves_cuts () =
  let rng = Prng.create 7 in
  let g =
    Generators.random_multigraph_weights rng (Generators.complete ~n:40) ~max_weight:10
  in
  let h = Spectral_sparsifier.sparsify rng ~eps:0.3 g in
  let worst = ref 0.0 in
  for _ = 1 to 30 do
    let c = Cut.random rng ~n:40 in
    let truth = Ugraph.cut_value g c in
    worst := Float.max !worst (Float.abs (Ugraph.cut_value h c -. truth) /. truth)
  done;
  Alcotest.(check bool) "cuts within eps" true (!worst <= 0.3)

let test_spectral_sparsifier_preserves_quadratic_forms () =
  let rng = Prng.create 8 in
  let g =
    Generators.random_multigraph_weights rng (Generators.complete ~n:30) ~max_weight:10
  in
  let h = Spectral_sparsifier.sparsify rng ~eps:0.25 g in
  let lg = Laplacian.of_ugraph g and lh = Laplacian.of_ugraph h in
  let worst = ref 0.0 in
  for _ = 1 to 30 do
    let x = Array.init 30 (fun _ -> Prng.gaussian rng) in
    let a = Laplacian.quadratic_form lg x and b = Laplacian.quadratic_form lh x in
    if a > 1e-9 then worst := Float.max !worst (Float.abs (b -. a) /. a)
  done;
  Alcotest.(check bool) "forms within eps" true (!worst <= 0.25)

let test_spectral_sparsifier_shrinks_dense () =
  let rng = Prng.create 9 in
  let g =
    Generators.random_multigraph_weights rng (Generators.complete ~n:60) ~max_weight:20
  in
  let h = Spectral_sparsifier.sparsify rng ~eps:0.5 g in
  Alcotest.(check bool) "fewer edges" true (Ugraph.m h < Ugraph.m g)

let test_spectral_expected_matches_foster () =
  (* On a complete unit graph at large eps, p_e < 1 everywhere, so the
     expected edge count is c·ln n/eps² · Σ w R = c·ln n/eps²·(n-1). *)
  let g = Generators.complete ~n:30 in
  let expected = Spectral_sparsifier.expected_edges ~c:0.05 ~eps:0.9 g in
  let formula = 0.05 *. log 30.0 /. (0.9 *. 0.9) *. 29.0 in
  Alcotest.(check bool) "matches Foster prediction" true
    (Float.abs (expected -. formula) /. formula < 0.01)

let prop_resistance_triangle_inequality =
  QCheck.Test.make ~name:"effective resistance is a metric (triangle)" ~count:15
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.erdos_renyi_connected rng ~n:9 ~p:0.4 in
      let u = Prng.int rng 9 and v = Prng.int rng 9 and w = Prng.int rng 9 in
      u = v || v = w || u = w
      || Resistance.pair g u w
         <= Resistance.pair g u v +. Resistance.pair g v w +. 1e-6)

let suite =
  [
    Alcotest.test_case "laplacian: entries" `Quick test_laplacian_entries;
    Alcotest.test_case "laplacian: kernel" `Quick test_laplacian_kernel;
    Alcotest.test_case "laplacian: quadratic form" `Quick test_quadratic_form_explicit;
    Alcotest.test_case "laplacian: PSD" `Quick test_quadratic_form_nonnegative;
    Alcotest.test_case "laplacian: cut via form" `Quick test_cut_value_matches_graph;
    Alcotest.test_case "laplacian: CG solve" `Quick test_solve_accuracy;
    Alcotest.test_case "resistance: single edge" `Quick test_resistance_single_edge;
    Alcotest.test_case "resistance: series" `Quick test_resistance_path_series;
    Alcotest.test_case "resistance: parallel" `Quick test_resistance_parallel;
    Alcotest.test_case "resistance: cycle" `Quick test_resistance_cycle;
    Alcotest.test_case "resistance: Foster's theorem" `Quick test_foster_theorem;
    Alcotest.test_case "resistance: all edges" `Quick test_all_edges_consistent_with_pair;
    Alcotest.test_case "spectral: preserves cuts" `Quick test_spectral_sparsifier_preserves_cuts;
    Alcotest.test_case "spectral: preserves forms" `Quick test_spectral_sparsifier_preserves_quadratic_forms;
    Alcotest.test_case "spectral: shrinks dense" `Quick test_spectral_sparsifier_shrinks_dense;
    Alcotest.test_case "spectral: Foster prediction" `Quick test_spectral_expected_matches_foster;
    QCheck_alcotest.to_alcotest prop_resistance_triangle_inequality;
  ]

open Dcs

let check_float = Alcotest.(check (float 1e-9))

(* --- Stoer–Wagner --- *)

let test_sw_two_nodes () =
  let g = Ugraph.of_edges 2 [ (0, 1, 3.5) ] in
  let v, c = Stoer_wagner.mincut g in
  check_float "value" 3.5 v;
  Alcotest.(check bool) "proper" true (Cut.is_proper c)

let test_sw_path () =
  (* Path with a light middle edge. *)
  let g = Ugraph.of_edges 4 [ (0, 1, 5.0); (1, 2, 1.0); (2, 3, 5.0) ] in
  let v, c = Stoer_wagner.mincut g in
  check_float "value" 1.0 v;
  check_float "witness value" 1.0 (Ugraph.cut_value g c)

let test_sw_cycle () =
  let g = Generators.cycle ~n:7 in
  let v, _ = Stoer_wagner.mincut g in
  check_float "cycle mincut = 2" 2.0 v

let test_sw_complete () =
  let g = Generators.complete ~n:6 in
  let v, c = Stoer_wagner.mincut g in
  check_float "K6 mincut = 5" 5.0 v;
  Alcotest.(check int) "singleton side" 1
    (min (Cut.cardinal c) (Cut.cardinal (Cut.complement c)))

let test_sw_disconnected () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let v, _ = Stoer_wagner.mincut g in
  check_float "disconnected" 0.0 v

let test_sw_weighted_planted () =
  let rng = Prng.create 5 in
  let g = Generators.planted_mincut rng ~block:15 ~k:4 ~p_inner:0.7 in
  let v, c = Stoer_wagner.mincut g in
  check_float "planted k" 4.0 v;
  check_float "witness matches" v (Ugraph.cut_value g c)

let test_sw_matches_brute () =
  let rng = Prng.create 6 in
  for _ = 1 to 25 do
    let g = Generators.erdos_renyi_connected rng ~n:9 ~p:0.3 in
    let g = Generators.random_multigraph_weights rng g ~max_weight:5 in
    let sw, swc = Stoer_wagner.mincut g in
    let bf, _ = Brute.mincut_ugraph g in
    check_float "sw = brute" bf sw;
    check_float "witness = value" sw (Ugraph.cut_value g swc)
  done

(* --- Dinic --- *)

let test_dinic_simple_st () =
  (* 0 -> 1 cap 3, 0 -> 2 cap 2, 1 -> 3 cap 2, 2 -> 3 cap 3: max flow 4 *)
  let g =
    Digraph.of_edges 4 [ (0, 1, 3.0); (0, 2, 2.0); (1, 3, 2.0); (2, 3, 3.0) ]
  in
  let net = Dinic.of_digraph g in
  check_float "maxflow" 4.0 (Dinic.maxflow net ~s:0 ~t:3)

let test_dinic_bottleneck () =
  let g = Digraph.of_edges 3 [ (0, 1, 10.0); (1, 2, 1.5) ] in
  let net = Dinic.of_digraph g in
  check_float "bottleneck" 1.5 (Dinic.maxflow net ~s:0 ~t:2)

let test_dinic_no_path () =
  let g = Digraph.of_edges 3 [ (1, 0, 1.0) ] in
  let net = Dinic.of_digraph g in
  check_float "no path" 0.0 (Dinic.maxflow net ~s:0 ~t:1)

let test_dinic_repeated_runs_reset () =
  let g = Digraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 2.0) ] in
  let net = Dinic.of_digraph g in
  check_float "first" 2.0 (Dinic.maxflow net ~s:0 ~t:2);
  check_float "second identical" 2.0 (Dinic.maxflow net ~s:0 ~t:2)

let test_dinic_mincut_side () =
  let g = Digraph.of_edges 4 [ (0, 1, 5.0); (1, 2, 1.0); (2, 3, 5.0) ] in
  let net = Dinic.of_digraph g in
  let f, side = Dinic.mincut_side net ~s:0 ~t:3 in
  check_float "flow" 1.0 f;
  Alcotest.(check bool) "s in side" true (Cut.mem side 0);
  Alcotest.(check bool) "t not in side" false (Cut.mem side 3);
  (* The side is a minimum s-t cut in the capacity graph. *)
  check_float "cut value = flow" f (Cut.value g side)

let test_dinic_maxflow_equals_brute_st_cut () =
  let rng = Prng.create 7 in
  for _ = 1 to 15 do
    let g = Generators.random_digraph rng ~n:7 ~p:0.4 ~max_weight:3.0 in
    let net = Dinic.of_digraph g in
    let flow = Dinic.maxflow net ~s:0 ~t:6 in
    (* brute-force min s-t cut *)
    let best = ref infinity in
    for mask = 0 to (1 lsl 5) - 1 do
      let mem v = v = 0 || (v < 6 && (mask lsr (v - 1)) land 1 = 1) in
      let c = Cut.of_mem ~n:7 mem in
      best := Float.min !best (Cut.value g c)
    done;
    check_float "maxflow = min st cut" !best flow
  done

let test_edge_connectivity_cycle () =
  check_float "cycle" 2.0 (Dinic.edge_connectivity (Generators.cycle ~n:6))

let test_edge_connectivity_complete () =
  check_float "K5" 4.0 (Dinic.edge_connectivity (Generators.complete ~n:5))

let test_edge_connectivity_matches_sw () =
  let rng = Prng.create 8 in
  for _ = 1 to 10 do
    let g = Generators.erdos_renyi_connected rng ~n:10 ~p:0.3 in
    check_float "lambda = sw" (Stoer_wagner.mincut_value g) (Dinic.edge_connectivity g)
  done

let test_edge_disjoint_paths () =
  let g = Generators.cycle ~n:8 in
  Alcotest.(check int) "cycle: 2 paths" 2 (Dinic.edge_disjoint_paths g ~s:0 ~t:4);
  let k = Generators.complete ~n:5 in
  Alcotest.(check int) "K5: 4 paths" 4 (Dinic.edge_disjoint_paths k ~s:0 ~t:3)

(* --- Karger --- *)

let test_karger_run_once_upper_bound () =
  let rng = Prng.create 9 in
  let g = Generators.planted_mincut rng ~block:10 ~k:2 ~p_inner:0.8 in
  let exact = Stoer_wagner.mincut_value g in
  for _ = 1 to 20 do
    let v, c = Karger.run_once rng g in
    Alcotest.(check bool) "upper bound" true (v >= exact -. 1e-9);
    check_float "witness consistent" v (Ugraph.cut_value g c)
  done

let test_karger_finds_planted () =
  let rng = Prng.create 10 in
  let g = Generators.planted_mincut rng ~block:10 ~k:2 ~p_inner:0.8 in
  let v, _ = Karger.mincut rng ~trials:150 g in
  check_float "finds min" (Stoer_wagner.mincut_value g) v

let test_karger_candidates_sorted_and_bounded () =
  let rng = Prng.create 11 in
  let g = Generators.planted_mincut rng ~block:8 ~k:3 ~p_inner:0.8 in
  let cands = Karger.candidate_cuts rng ~trials:100 ~factor:2.0 g in
  Alcotest.(check bool) "nonempty" true (cands <> []);
  let values = List.map fst cands in
  let best = List.hd values in
  List.iter
    (fun v -> Alcotest.(check bool) "within factor" true (v <= (2.0 *. best) +. 1e-9))
    values;
  let rec sorted = function
    | a :: b :: tl -> a <= b +. 1e-9 && sorted (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted values)

let test_karger_candidates_distinct () =
  let rng = Prng.create 12 in
  let g = Generators.cycle ~n:6 in
  let cands = Karger.candidate_cuts rng ~trials:300 ~factor:1.0 g in
  (* All min cuts of a cycle have value 2; check distinctness via values/cuts *)
  let keys =
    List.map
      (fun (_, c) ->
        let c = if Cut.mem c 0 then c else Cut.complement c in
        Cut.to_list c)
      cands
  in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check int) "no duplicate cuts" (List.length keys) (List.length sorted)

(* --- Karger–Stein --- *)

let test_karger_stein_matches_sw () =
  let rng = Prng.create 14 in
  for _ = 1 to 8 do
    let g = Generators.planted_mincut rng ~block:15 ~k:3 ~p_inner:0.6 in
    let sw = Stoer_wagner.mincut_value g in
    let ks, c = Karger_stein.mincut rng g in
    check_float "ks = sw" sw ks;
    check_float "witness consistent" ks (Ugraph.cut_value g c)
  done

let test_karger_stein_weighted () =
  let rng = Prng.create 15 in
  let g =
    Generators.random_multigraph_weights rng
      (Generators.erdos_renyi_connected rng ~n:25 ~p:0.3)
      ~max_weight:7
  in
  let sw = Stoer_wagner.mincut_value g in
  let ks, _ = Karger_stein.mincut ~runs:30 rng g in
  check_float "weighted ks = sw" sw ks

let test_karger_stein_run_once_upper_bound () =
  let rng = Prng.create 16 in
  let g = Generators.cycle ~n:12 in
  for _ = 1 to 10 do
    let v, c = Karger_stein.run_once rng g in
    Alcotest.(check bool) "upper bound" true (v >= 2.0 -. 1e-9);
    check_float "witness" v (Ugraph.cut_value g c)
  done

let test_karger_stein_two_nodes () =
  let rng = Prng.create 17 in
  let g = Ugraph.of_edges 2 [ (0, 1, 4.5) ] in
  let v, _ = Karger_stein.mincut rng g in
  check_float "trivial" 4.5 v

(* --- Gomory–Hu --- *)

let test_gh_path_graph () =
  (* On a path, min u-v cut = lightest edge between them. *)
  let g = Ugraph.of_edges 4 [ (0, 1, 5.0); (1, 2, 1.0); (2, 3, 3.0) ] in
  let t = Gomory_hu.build g in
  check_float "0-3" 1.0 (Gomory_hu.min_cut_value t 0 3);
  check_float "0-1" 5.0 (Gomory_hu.min_cut_value t 0 1);
  check_float "2-3" 3.0 (Gomory_hu.min_cut_value t 2 3)

let test_gh_all_pairs_match_maxflow () =
  let rng = Prng.create 18 in
  for _ = 1 to 5 do
    let g = Generators.erdos_renyi_connected rng ~n:10 ~p:0.3 in
    let g = Generators.random_multigraph_weights rng g ~max_weight:4 in
    let t = Gomory_hu.build g in
    let net = Dinic.of_ugraph g in
    for u = 0 to 9 do
      for v = u + 1 to 9 do
        check_float
          (Printf.sprintf "pair %d-%d" u v)
          (Dinic.maxflow net ~s:u ~t:v)
          (Gomory_hu.min_cut_value t u v)
      done
    done
  done

let test_gh_witness_cuts_valid () =
  let rng = Prng.create 19 in
  let g = Generators.erdos_renyi_connected rng ~n:12 ~p:0.3 in
  let t = Gomory_hu.build g in
  for u = 0 to 11 do
    for v = u + 1 to 11 do
      let f, side = Gomory_hu.min_cut t u v in
      Alcotest.(check bool) "separates" true (Cut.mem side u && not (Cut.mem side v));
      check_float "witness value" f (Ugraph.cut_value g side)
    done
  done

let test_gh_global_equals_sw () =
  let rng = Prng.create 20 in
  for _ = 1 to 5 do
    let g = Generators.erdos_renyi_connected rng ~n:14 ~p:0.25 in
    let t = Gomory_hu.build g in
    let f, side = Gomory_hu.global_min_cut t in
    check_float "global = sw" (Stoer_wagner.mincut_value g) f;
    check_float "witness" f (Ugraph.cut_value g side)
  done

let test_gh_tree_has_n_minus_1_edges () =
  let rng = Prng.create 21 in
  let g = Generators.erdos_renyi_connected rng ~n:9 ~p:0.4 in
  let t = Gomory_hu.build g in
  Alcotest.(check int) "n-1 edges" 8 (List.length (Gomory_hu.tree_edges t))

let test_gh_rejects_disconnected () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Gomory_hu.build: graph must be connected") (fun () ->
      ignore (Gomory_hu.build g))

(* --- Brute --- *)

let test_brute_digraph_min_direction () =
  (* One heavy direction, one light: brute should report the light one. *)
  let g = Digraph.of_edges 2 [ (0, 1, 9.0); (1, 0, 2.0) ] in
  let v, _ = Brute.mincut_digraph g in
  check_float "takes min direction" 2.0 v

let test_brute_rejects_large () =
  let g = Ugraph.create 30 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Brute.mincut: need 2 <= n <= 24") (fun () ->
      ignore (Brute.mincut_ugraph g))

(* qcheck: min-cut values form an ultrametric-like structure on the GH tree:
   mincut(u,w) >= min(mincut(u,v), mincut(v,w)). *)
let prop_gh_ultrametric =
  QCheck.Test.make ~name:"gomory-hu ultrametric inequality" ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.erdos_renyi_connected rng ~n:9 ~p:0.35 in
      let t = Gomory_hu.build g in
      let u = Prng.int rng 9 and v = Prng.int rng 9 and w = Prng.int rng 9 in
      u = v || v = w || u = w
      || Gomory_hu.min_cut_value t u w
         >= Float.min (Gomory_hu.min_cut_value t u v) (Gomory_hu.min_cut_value t v w)
            -. 1e-9)

(* qcheck: adding an edge never decreases the global min cut. *)
let prop_sw_monotone_under_edge_addition =
  QCheck.Test.make ~name:"min cut monotone under edge addition" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.erdos_renyi_connected rng ~n:10 ~p:0.3 in
      let before = Stoer_wagner.mincut_value g in
      let u = Prng.int rng 10 and v = Prng.int rng 10 in
      if u = v then true
      else begin
        let g' = Ugraph.copy g in
        Ugraph.add_edge g' u v 1.5;
        Stoer_wagner.mincut_value g' >= before -. 1e-9
      end)

(* qcheck: SW = brute on random weighted graphs *)
let prop_sw_equals_brute =
  QCheck.Test.make ~name:"stoer-wagner = brute force" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.erdos_renyi_connected rng ~n:8 ~p:0.35 in
      let g = Generators.random_multigraph_weights rng g ~max_weight:4 in
      Float.abs (Stoer_wagner.mincut_value g -. fst (Brute.mincut_ugraph g)) < 1e-9)

let prop_edge_connectivity_equals_sw =
  QCheck.Test.make ~name:"dinic edge connectivity = stoer-wagner" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.erdos_renyi_connected rng ~n:9 ~p:0.3 in
      Float.abs (Dinic.edge_connectivity g -. Stoer_wagner.mincut_value g) < 1e-9)

let suite =
  [
    Alcotest.test_case "sw: two nodes" `Quick test_sw_two_nodes;
    Alcotest.test_case "sw: path" `Quick test_sw_path;
    Alcotest.test_case "sw: cycle" `Quick test_sw_cycle;
    Alcotest.test_case "sw: complete" `Quick test_sw_complete;
    Alcotest.test_case "sw: disconnected" `Quick test_sw_disconnected;
    Alcotest.test_case "sw: planted weighted" `Quick test_sw_weighted_planted;
    Alcotest.test_case "sw: matches brute" `Quick test_sw_matches_brute;
    Alcotest.test_case "dinic: simple s-t" `Quick test_dinic_simple_st;
    Alcotest.test_case "dinic: bottleneck" `Quick test_dinic_bottleneck;
    Alcotest.test_case "dinic: no path" `Quick test_dinic_no_path;
    Alcotest.test_case "dinic: repeated runs reset" `Quick test_dinic_repeated_runs_reset;
    Alcotest.test_case "dinic: mincut side" `Quick test_dinic_mincut_side;
    Alcotest.test_case "dinic: maxflow = min s-t cut" `Quick test_dinic_maxflow_equals_brute_st_cut;
    Alcotest.test_case "dinic: edge connectivity cycle" `Quick test_edge_connectivity_cycle;
    Alcotest.test_case "dinic: edge connectivity complete" `Quick test_edge_connectivity_complete;
    Alcotest.test_case "dinic: edge connectivity = sw" `Quick test_edge_connectivity_matches_sw;
    Alcotest.test_case "dinic: edge disjoint paths" `Quick test_edge_disjoint_paths;
    Alcotest.test_case "karger: run once upper bound" `Quick test_karger_run_once_upper_bound;
    Alcotest.test_case "karger: finds planted" `Quick test_karger_finds_planted;
    Alcotest.test_case "karger: candidates bounded/sorted" `Quick test_karger_candidates_sorted_and_bounded;
    Alcotest.test_case "karger: candidates distinct" `Quick test_karger_candidates_distinct;
    Alcotest.test_case "karger-stein: matches sw" `Quick test_karger_stein_matches_sw;
    Alcotest.test_case "karger-stein: weighted" `Quick test_karger_stein_weighted;
    Alcotest.test_case "karger-stein: upper bound" `Quick test_karger_stein_run_once_upper_bound;
    Alcotest.test_case "karger-stein: two nodes" `Quick test_karger_stein_two_nodes;
    Alcotest.test_case "gomory-hu: path graph" `Quick test_gh_path_graph;
    Alcotest.test_case "gomory-hu: all pairs = maxflow" `Quick test_gh_all_pairs_match_maxflow;
    Alcotest.test_case "gomory-hu: witness cuts" `Quick test_gh_witness_cuts_valid;
    Alcotest.test_case "gomory-hu: global = sw" `Quick test_gh_global_equals_sw;
    Alcotest.test_case "gomory-hu: tree size" `Quick test_gh_tree_has_n_minus_1_edges;
    Alcotest.test_case "gomory-hu: rejects disconnected" `Quick test_gh_rejects_disconnected;
    Alcotest.test_case "brute: digraph min direction" `Quick test_brute_digraph_min_direction;
    Alcotest.test_case "brute: rejects large" `Quick test_brute_rejects_large;
    QCheck_alcotest.to_alcotest prop_gh_ultrametric;
    QCheck_alcotest.to_alcotest prop_sw_monotone_under_edge_addition;
    QCheck_alcotest.to_alcotest prop_sw_equals_brute;
    QCheck_alcotest.to_alcotest prop_edge_connectivity_equals_sw;
  ]

open Dcs

(* --- Bitstring --- *)

let test_bitstring_basics () =
  let s = Bitstring.zeros 5 in
  Alcotest.(check int) "length" 5 (Bitstring.length s);
  Alcotest.(check int) "weight" 0 (Bitstring.hamming_weight s)

let test_bitstring_random_weight () =
  let rng = Prng.create 1 in
  for _ = 1 to 30 do
    let s = Bitstring.random_weight rng ~n:20 ~weight:7 in
    Alcotest.(check int) "weight" 7 (Bitstring.hamming_weight s)
  done

let test_bitstring_distance_int () =
  let a = [| true; true; false; false |] in
  let b = [| true; false; true; false |] in
  Alcotest.(check int) "distance" 2 (Bitstring.hamming_distance a b);
  Alcotest.(check int) "intersection" 1 (Bitstring.intersection_size a b);
  Alcotest.(check bool) "not disjoint" false (Bitstring.disjoint a b);
  Alcotest.(check bool) "disjoint" true
    (Bitstring.disjoint [| true; false |] [| false; true |])

let test_bitstring_ones_concat () =
  let a = [| false; true; true |] in
  Alcotest.(check (list int)) "ones" [ 1; 2 ] (Bitstring.ones a);
  let c = Bitstring.concat [ a; [| true |] ] in
  Alcotest.(check int) "concat length" 4 (Bitstring.length c);
  Alcotest.(check (list int)) "concat ones" [ 1; 2; 3 ] (Bitstring.ones c)

(* --- Channel --- *)

let test_channel_accounting () =
  let ch = Channel.create () in
  Channel.send ch ~bits:10;
  Channel.exchange ch ~bits:2;
  Alcotest.(check int) "bits" 12 (Channel.total_bits ch);
  Alcotest.(check int) "rounds" 2 (Channel.rounds ch)

(* --- Index game (Lemma 3.1 harness) --- *)

let test_index_instance_shape () =
  let rng = Prng.create 2 in
  let inst = Index_game.generate rng ~n:50 in
  Alcotest.(check int) "length" 50 (Array.length inst.Index_game.s);
  Alcotest.(check bool) "index range" true
    (inst.Index_game.i >= 0 && inst.Index_game.i < 50);
  Array.iter
    (fun z -> Alcotest.(check bool) "signs" true (z = 1 || z = -1))
    inst.Index_game.s

let test_index_trivial_protocol_wins () =
  let rng = Prng.create 3 in
  let r = Index_game.play rng ~n:64 ~trials:50 Index_game.trivial_protocol in
  Alcotest.(check (float 1e-9)) "always right" 1.0 r.Index_game.success_rate;
  Alcotest.(check (float 1e-9)) "64 bits" 64.0 r.Index_game.mean_message_bits

let test_index_empty_protocol_is_chance () =
  (* A protocol that sends nothing decodes at chance. *)
  let rng = Prng.create 4 in
  let coin = Prng.create 5 in
  let proto =
    { Index_game.encode = (fun _ -> ((), 0)); decode = (fun () _ -> Prng.sign coin) }
  in
  let r = Index_game.play rng ~n:32 ~trials:2000 proto in
  Alcotest.(check bool) "~50%" true
    (Float.abs (r.Index_game.success_rate -. 0.5) < 0.05)

(* --- Gap-Hamming (Lemma 4.1 instances) --- *)

let test_gap_hamming_valid () =
  let rng = Prng.create 6 in
  for _ = 1 to 20 do
    let inst = Gap_hamming.generate rng ~h:10 ~inv_eps_sq:16 ~c:0.5 in
    Alcotest.(check bool) "internally consistent" true (Gap_hamming.check inst)
  done

let test_gap_hamming_planted_distance () =
  let rng = Prng.create 7 in
  for _ = 1 to 30 do
    let inst = Gap_hamming.generate rng ~h:5 ~inv_eps_sq:64 ~c:0.25 in
    let delta =
      Bitstring.hamming_distance inst.Gap_hamming.strings.(inst.Gap_hamming.i)
        inst.Gap_hamming.t
    in
    let half = inst.Gap_hamming.d / 2 in
    if inst.Gap_hamming.high then
      Alcotest.(check bool) "high side" true (delta >= half + inst.Gap_hamming.gap)
    else
      Alcotest.(check bool) "low side" true (delta <= half - inst.Gap_hamming.gap)
  done

let test_gap_hamming_sides_balanced () =
  let rng = Prng.create 8 in
  let highs = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let inst = Gap_hamming.generate rng ~h:2 ~inv_eps_sq:16 ~c:0.5 in
    if inst.Gap_hamming.high then incr highs
  done;
  let rate = float_of_int !highs /. float_of_int trials in
  Alcotest.(check bool) "fair coin" true (Float.abs (rate -. 0.5) < 0.08)

let test_gap_hamming_rejects_bad_d () =
  let rng = Prng.create 9 in
  Alcotest.check_raises "d mod 4"
    (Invalid_argument "Gap_hamming.generate: 1/eps^2 must be a positive multiple of 4")
    (fun () -> ignore (Gap_hamming.generate rng ~h:2 ~inv_eps_sq:6 ~c:0.5))

let test_gap_hamming_total_bits () =
  let rng = Prng.create 10 in
  let inst = Gap_hamming.generate rng ~h:7 ~inv_eps_sq:16 ~c:0.5 in
  Alcotest.(check int) "h*d" 112 (Gap_hamming.total_input_bits inst)

(* --- 2-SUM (Definition 5.2) --- *)

let test_two_sum_promise () =
  let rng = Prng.create 11 in
  for _ = 1 to 20 do
    let inst = Two_sum.generate rng ~t:20 ~len:30 ~alpha:3 ~frac_intersecting:0.25 in
    Alcotest.(check bool) "promise holds" true (Two_sum.check inst)
  done

let test_two_sum_sums () =
  let rng = Prng.create 12 in
  let inst = Two_sum.generate rng ~t:16 ~len:20 ~alpha:2 ~frac_intersecting:0.25 in
  Alcotest.(check int) "disj sum" (16 - inst.Two_sum.intersecting) (Two_sum.disj_sum inst);
  Alcotest.(check int) "int sum" (2 * inst.Two_sum.intersecting) (Two_sum.int_sum inst)

let test_two_sum_minimum_one_intersecting () =
  let rng = Prng.create 13 in
  let inst = Two_sum.generate rng ~t:10 ~len:20 ~alpha:1 ~frac_intersecting:0.0 in
  Alcotest.(check bool) "at least 1/1000 enforced" true (inst.Two_sum.intersecting >= 1)

let test_two_sum_concat () =
  let rng = Prng.create 14 in
  let inst = Two_sum.generate rng ~t:4 ~len:9 ~alpha:2 ~frac_intersecting:0.5 in
  let x, y = Two_sum.concat_pair inst in
  Alcotest.(check int) "length" 36 (Bitstring.length x);
  Alcotest.(check int) "INT(x,y) = int_sum" (Two_sum.int_sum inst)
    (Bitstring.intersection_size x y)

let test_two_sum_amplify () =
  let rng = Prng.create 15 in
  let base = Two_sum.generate rng ~t:8 ~len:10 ~alpha:1 ~frac_intersecting:0.25 in
  let amp = Two_sum.amplify base ~alpha:3 in
  Alcotest.(check int) "alpha" 3 amp.Two_sum.alpha;
  Alcotest.(check int) "length" 30 amp.Two_sum.len;
  Alcotest.(check bool) "still valid" true (Two_sum.check amp);
  Alcotest.(check int) "same disj sum" (Two_sum.disj_sum base) (Two_sum.disj_sum amp)

let test_two_sum_amplify_requires_alpha_one () =
  let rng = Prng.create 16 in
  let inst = Two_sum.generate rng ~t:4 ~len:10 ~alpha:2 ~frac_intersecting:0.5 in
  Alcotest.check_raises "alpha=1 required"
    (Invalid_argument "Two_sum.amplify: input must have alpha = 1") (fun () ->
      ignore (Two_sum.amplify inst ~alpha:2))

(* qcheck: every pair in a generated 2-SUM instance has INT in {0, alpha} *)
let prop_two_sum_int_values =
  QCheck.Test.make ~name:"2-SUM pairs have INT in {0, α}" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 1 4))
    (fun (seed, alpha) ->
      let rng = Prng.create seed in
      let inst = Two_sum.generate rng ~t:12 ~len:(8 * alpha) ~alpha ~frac_intersecting:0.3 in
      Array.for_all2
        (fun x y ->
          let v = Bitstring.intersection_size x y in
          v = 0 || v = alpha)
        inst.Two_sum.xs inst.Two_sum.ys)

let prop_amplify_scales_int_sum =
  QCheck.Test.make ~name:"amplification scales INT sums by α" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 2 5))
    (fun (seed, alpha) ->
      let rng = Prng.create seed in
      let base = Two_sum.generate rng ~t:10 ~len:12 ~alpha:1 ~frac_intersecting:0.3 in
      let amp = Two_sum.amplify base ~alpha in
      Two_sum.int_sum amp = alpha * Two_sum.int_sum base
      && Two_sum.disj_sum amp = Two_sum.disj_sum base)

let prop_gap_hamming_weights =
  QCheck.Test.make ~name:"gap-hamming strings have weight d/2" ~count:40
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let inst = Gap_hamming.generate rng ~h:6 ~inv_eps_sq:16 ~c:0.5 in
      Array.for_all (fun s -> Bitstring.hamming_weight s = 8) inst.Gap_hamming.strings
      && Bitstring.hamming_weight inst.Gap_hamming.t = 8)

let suite =
  [
    Alcotest.test_case "bitstring: basics" `Quick test_bitstring_basics;
    Alcotest.test_case "bitstring: random weight" `Quick test_bitstring_random_weight;
    Alcotest.test_case "bitstring: distance/INT" `Quick test_bitstring_distance_int;
    Alcotest.test_case "bitstring: ones/concat" `Quick test_bitstring_ones_concat;
    Alcotest.test_case "channel: accounting" `Quick test_channel_accounting;
    Alcotest.test_case "index: instance shape" `Quick test_index_instance_shape;
    Alcotest.test_case "index: trivial protocol" `Quick test_index_trivial_protocol_wins;
    Alcotest.test_case "index: empty protocol = chance" `Quick test_index_empty_protocol_is_chance;
    Alcotest.test_case "gap-hamming: valid" `Quick test_gap_hamming_valid;
    Alcotest.test_case "gap-hamming: planted distance" `Quick test_gap_hamming_planted_distance;
    Alcotest.test_case "gap-hamming: sides balanced" `Quick test_gap_hamming_sides_balanced;
    Alcotest.test_case "gap-hamming: rejects bad d" `Quick test_gap_hamming_rejects_bad_d;
    Alcotest.test_case "gap-hamming: total bits" `Quick test_gap_hamming_total_bits;
    Alcotest.test_case "2sum: promise" `Quick test_two_sum_promise;
    Alcotest.test_case "2sum: sums" `Quick test_two_sum_sums;
    Alcotest.test_case "2sum: min intersecting" `Quick test_two_sum_minimum_one_intersecting;
    Alcotest.test_case "2sum: concat" `Quick test_two_sum_concat;
    Alcotest.test_case "2sum: amplify (Thm 5.4)" `Quick test_two_sum_amplify;
    Alcotest.test_case "2sum: amplify validation" `Quick test_two_sum_amplify_requires_alpha_one;
    QCheck_alcotest.to_alcotest prop_two_sum_int_values;
    QCheck_alcotest.to_alcotest prop_amplify_scales_int_sum;
    QCheck_alcotest.to_alcotest prop_gap_hamming_weights;
  ]

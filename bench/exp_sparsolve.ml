(* E24 — Sparsify-then-solve: connectivity sampling + partial min-cut.

   The upper-bound counterpart of the serving/sketching experiments:
   instead of answering cut queries from a sketch, shrink the graph with
   connectivity-based importance sampling (CCPS21's compress — p =
   min(1, ρ/λ̂) with λ̂ the Dcs.Connectivity tier-chain estimates) and run
   the min-cut solver on the sparsifier, certifying the returned cut
   against the original graph (Dcs.Partial_mincut). Three stages:

   - quality: on the E13 instance family (balanced digraphs, n = 120,
     dense weighted), the connectivity sampler must beat the E12/E13
     strength-based for-all sampler's worst sampled-cut error at a
     matched sketch size — ρ is bisected on [expected_kept] until the
     expected kept-edge count sits at 93% of the strength sampler's
     realized count, and the floor demands both fewer kept edges AND a
     strictly smaller worst error over the same 30 random cuts. Enforced
     in the report closure, so warm (cached) runs re-verify it.

   - speed: end-to-end sparsify-then-solve (NI strengths -> tier-chain
     estimates -> binomial resampling -> Karger on the sparsifier ->
     certify against the frozen CSR) vs the dense solver at the same
     trial count, on a planted two-block instance (n = 1000, ~150k
     weighted edges, two cross edges). Floor: >= 3x wall-clock, enforced
     inside the stage on every cold run — an anti-regression floor sized
     for 1-core hosts (measured ~4x; the speedup is algorithmic, edges
     solved shrink ~6.6x, so it does not depend on parallelism). The
     planted cut's edges have lambda-hat below rho, so they ride through
     sampling at p = 1 and certification holds by construction (see the
     s_* comment below). Figures go to stderr; the artifact carries
     only deterministic values, so the table is byte-identical across
     DCS_DOMAINS and warm/cold cache runs. The sparse pipeline is also
     re-run at explicit domain counts 1/2/4 and its (value, cut, kept
     edges, certification) must be identical — scheduling must leak into
     nothing.

   - drivers: every solver routed through the certify/repair layer —
     Karger, Karger–Stein, Stoer–Wagner on an undirected instance, plus
     the directed s–t Dinic driver — and a forced-fallback row at an
     absurdly small ρ whose repaired answer must equal the dense one
     exactly (the fast path can make the answer slower, never wrong).

   All three stages are [Serial]: they spawn their own [Pool.run_batched]
   fan-outs (capped max-flows, Karger trials) and the speed stage
   measures wall clock. *)

open Dcs
module P = Pipelines

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let cores = Domain.recommended_domain_count ()
let domain_grid = [ 1; 2; 4 ]

(* --- quality: connectivity vs strength sampling at matched size --- *)

(* beta >= 2: the floor targets the directed-balance regime. At beta = 1
   the balanced generator is near-symmetric, the (1+beta) division
   flattens lambda-hat into a near-uniform measure, and connectivity
   sampling has no heterogeneity left to exploit — the strength baseline
   wins that corner at every sketch size we tried. eps = 0.3 keeps the
   matched budgets out of the starvation regime (a few hundred edges)
   where the worst-of-30-cuts comparison is a seed lottery. *)
let q_eps = 0.3
let q_betas = [ 2.0; 4.0; 8.0 ]
let q_n = 120

(* Estimation ceiling, exact-flow budget and NI rounds for the quality
   instances: dense n = 120 graphs have local connectivities in the
   thousands, so the ceiling sits high and the flow tier gets a real
   budget (the triangle tier resolves most edges; the flows sharpen the
   weakest bounds). *)
let q_cap = 1500.0
let q_flow_budget = 300
let q_rounds = 128
let q_match = 0.93

(* Bisect ρ until the expected kept-edge count of the connectivity
   sampler sits at [q_match] of the strength sampler's realized count —
   the matched-budget comparison: monotone, so 50 halvings pin it. *)
let match_rho ~target conn =
  let lo = ref 0.01 and hi = ref q_cap in
  for _ = 1 to 50 do
    let mid = 0.5 *. (!lo +. !hi) in
    if Directed_sparsifier.expected_kept ~rho:mid conn > target then hi := mid
    else lo := mid
  done;
  !lo

let worst_cut_error ~cuts g h =
  List.fold_left
    (fun acc c ->
      let truth = Cut.value g c in
      if truth > 0.0 then
        Float.max acc (Float.abs (Cut.value h c -. truth) /. truth)
      else acc)
    0.0 cuts

(* Artifact: (beta, m, kept_b, err_b, kept_c, err_c, rho, flows run). *)
let quality_stage pl beta =
  let tag = Printf.sprintf "sparsolve.b%g" beta in
  let graph =
    P.balanced_digraph pl ~tag ~n:q_n ~p:0.8 ~beta ~max_weight:30.0
  in
  let csr = P.digraph_csr pl ~tag graph in
  let strengths = P.projection_strengths pl ~tag ~rounds:q_rounds graph in
  let name = Printf.sprintf "sparsolve.quality b%g" beta in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name) ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep graph; Sched.dep csr; Sched.dep strengths ]
    (fun () ->
      let g = P.value pl graph in
      let frozen = P.value pl csr in
      let str = P.value pl strengths in
      (* Baseline: the E12/E13 strength-based for-all sampler, at the E13
         recipe (c = 0.5). *)
      let b =
        Directed_sparsifier.forall_sparsify ~c:0.5
          (P.seed_rng (name ^ ".base"))
          ~eps:q_eps ~beta g
      in
      let kept_b = Digraph.m b in
      let conn =
        Connectivity.estimate_digraph ~csr:frozen ~strengths:str ~beta
          ~cap:q_cap ~flow_budget:q_flow_budget g
      in
      let rho = match_rho ~target:(float_of_int kept_b *. q_match) conn in
      let h =
        Directed_sparsifier.connectivity_sparsify ~rho ~connectivity:conn
          (P.seed_rng (name ^ ".conn"))
          ~eps:q_eps ~beta g
      in
      let cuts =
        let crng = P.seed_rng (name ^ ".cuts") in
        List.init 30 (fun _ -> Cut.random crng ~n:q_n)
      in
      let err_b = worst_cut_error ~cuts g b in
      let err_c = worst_cut_error ~cuts g h in
      ( beta,
        Digraph.m g,
        kept_b,
        err_b,
        Digraph.m h,
        err_c,
        rho,
        (Connectivity.stats conn).Connectivity.flows ))

(* --- speed: end-to-end sparsify-then-solve vs the dense solver --- *)

(* The instance is two dense blocks (n = 1000, ~150k weighted edges)
   joined by [s_k] light cross edges — the heterogeneous-connectivity
   regime connectivity sampling targets. In-block edges have local
   connectivity in the thousands (the triangle tier saturates at the
   cap), so they are downsampled ~6x; the planted cut's edges have
   λ̂ <= s_k·max_weight < ρ, so p = 1 and the minimum cut survives in H
   with its weight *exact* — certification then passes by construction
   rather than by seed luck. (On a homogeneous ER instance every cut is
   strong and equally downsampled; Karger on H returns the most
   *under*estimated cut — selection bias — with |exact - sparse|/exact
   around sqrt(ln n_cuts/ρ) ≈ 0.5 at ρ = 14, and certification thrashes
   into the dense fallback.) *)
let s_trials = 144
let s_eps = 0.4
let s_rho = 14.0
let s_cap = 300.0
let s_rounds = 8
let s_flow_budget = 32
let s_block = 500
let s_k = 2

(* The whole sparse pipeline, end to end — NI rounds, tier-chain
   estimation, binomial resampling, Karger on the sparsifier, certify
   against the frozen view — everything the dense side does not pay. *)
let sparse_pipeline ?domains rng g =
  let strengths = Strength.compute ~max_rounds:s_rounds g in
  let conn =
    Connectivity.estimate_ugraph ?domains ~strengths
      ~flow_budget:s_flow_budget ~cap:s_cap g
  in
  Partial_mincut.mincut ?domains ~rho:s_rho ~connectivity:conn rng ~eps:s_eps
    ~solver:(Partial_mincut.Karger { trials = s_trials }) g

let enforce_speed_floor ~dense_s ~sparse_s ~m ~m' =
  let sp = dense_s /. Float.max sparse_s 1e-9 in
  Printf.eprintf
    "  [E24 speed n=1000: dense %.3fs, sparse %.3fs end-to-end, %.2fx, edges \
     %d -> %d, %d cores]\n\
     %!"
    dense_s sparse_s sp m m' cores;
  if sp < 3.0 then
    failwith
      (Printf.sprintf
         "E24: sparsify-then-solve %.2fx < 3x vs dense Karger (%d trials, %d \
          cores) — anti-regression floor"
         sp s_trials cores)

(* Artifact: (n, m, trials, dense value, result fields, m', flows,
   identical across explicit domain counts). Wall clock stays on
   stderr. *)
let speed_stage pl =
  let graph =
    P.planted_graph pl ~tag:"sparsolve.speed" ~block:s_block ~k:s_k
      ~p_inner:0.6 ~max_weight:6
  in
  let name = "sparsolve.speed" in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name) ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep graph ]
    (fun () ->
      let g = P.value pl graph in
      let seed = P.seed_rng name in
      let (dense_v, dense_cut), dense_s =
        time (fun () -> Karger.mincut (Prng.copy seed) ~trials:s_trials g)
      in
      ignore dense_cut;
      let sparse_seed = P.seed_rng (name ^ ".sparse") in
      let r, sparse_s =
        time (fun () -> sparse_pipeline (Prng.copy sparse_seed) g)
      in
      enforce_speed_floor ~dense_s ~sparse_s ~m:(Ugraph.m g)
        ~m':r.Partial_mincut.stats.Partial_mincut.m_sparse;
      (* Scheduling must leak into nothing: the same pipeline at explicit
         domain counts returns the identical cut. *)
      let identical =
        List.for_all
          (fun dom ->
            let r' = sparse_pipeline ~domains:dom (Prng.copy sparse_seed) g in
            r'.Partial_mincut.value = r.Partial_mincut.value
            && Cut.equal r'.Partial_mincut.cut r.Partial_mincut.cut
            && r'.Partial_mincut.stats.Partial_mincut.m_sparse
               = r.Partial_mincut.stats.Partial_mincut.m_sparse
            && r'.Partial_mincut.stats.Partial_mincut.certified
               = r.Partial_mincut.stats.Partial_mincut.certified)
          domain_grid
      in
      if not identical then
        failwith "E24: sparse pipeline diverges across explicit domain counts";
      let st = r.Partial_mincut.stats in
      ( Ugraph.n g,
        Ugraph.m g,
        s_trials,
        dense_v,
        r.Partial_mincut.value,
        st.Partial_mincut.certified,
        st.Partial_mincut.fell_back,
        st.Partial_mincut.m_sparse,
        st.Partial_mincut.conn.Connectivity.flows ))

(* --- drivers: every solver through certify/repair --- *)

let d_eps = 0.4
let d_rho = 12.0
let d_cap = 120.0
let d_flow_budget = 64

(* Artifact rows: (label, m', value, sparse_value, certified, fell_back)
   plus the dense Stoer–Wagner reference value. *)
let drivers_stage pl =
  (* Small on purpose: this stage checks routing and the certify/repair
     contract, not scale — and Karger–Stein's dense quotient recursion
     prices each run at seconds already at n = 300. *)
  let graph =
    P.weighted_graph pl ~tag:"sparsolve.drivers" ~n:150 ~p:0.16 ~max_weight:6
  in
  let dgraph =
    P.balanced_digraph pl ~tag:"sparsolve.st" ~n:160 ~p:0.3 ~beta:2.0
      ~max_weight:8.0
  in
  let name = "sparsolve.drivers" in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name) ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep graph; Sched.dep dgraph ]
    (fun () ->
      let g = P.value pl graph in
      let exact, _ = Stoer_wagner.mincut g in
      let run label solver =
        let r =
          Partial_mincut.mincut ~rho:d_rho ~cap:d_cap
            ~flow_budget:d_flow_budget
            (P.seed_rng (name ^ "." ^ label))
            ~eps:d_eps ~solver g
        in
        let st = r.Partial_mincut.stats in
        (* Repair invariant: the reported value is an exact cut weight of
           the original graph, so it can never undercut the minimum. *)
        if r.Partial_mincut.value < exact -. 1e-9 then
          failwith (Printf.sprintf "E24: %s reported below the min cut" label);
        ( label,
          st.Partial_mincut.m_sparse,
          r.Partial_mincut.value,
          st.Partial_mincut.sparse_value,
          st.Partial_mincut.certified,
          st.Partial_mincut.fell_back )
      in
      let rows =
        [
          run "karger" (Partial_mincut.Karger { trials = 200 });
          run "karger-stein" (Partial_mincut.Karger_stein { runs = Some 2 });
          run "stoer-wagner" Partial_mincut.Stoer_wagner;
        ]
      in
      (* Forced fallback: ρ so small the sparsifier guts the graph; the
         certifier must catch it and the repaired answer equals the dense
         one exactly. *)
      let forced =
        let r =
          Partial_mincut.mincut ~rho:0.05 ~cap:1.0
            (P.seed_rng (name ^ ".forced"))
            ~eps:d_eps ~solver:Partial_mincut.Stoer_wagner g
        in
        if not r.Partial_mincut.stats.Partial_mincut.fell_back then
          failwith "E24: rho = 0.05 sparsifier escaped the certifier";
        if Float.abs (r.Partial_mincut.value -. exact) > 1e-9 then
          failwith "E24: fallback value differs from the dense solver";
        let st = r.Partial_mincut.stats in
        ( "stoer-wagner rho=0.05",
          st.Partial_mincut.m_sparse,
          r.Partial_mincut.value,
          st.Partial_mincut.sparse_value,
          st.Partial_mincut.certified,
          st.Partial_mincut.fell_back )
      in
      (* Directed s–t min-cut through the CCPS21 sampler + Dinic. *)
      let dg = P.value pl dgraph in
      let dn = Digraph.n dg in
      let dense_st = Dinic.maxflow (Dinic.of_digraph dg) ~s:0 ~t:(dn - 1) in
      let st_row =
        let r =
          Partial_mincut.st_mincut ~rho:20.0 ~cap:300.0 ~flow_budget:200
            (P.seed_rng (name ^ ".st"))
            ~eps:0.5 ~beta:2.0 ~s:0 ~t:(dn - 1) dg
        in
        if r.Partial_mincut.value < dense_st -. 1e-9 then
          failwith "E24: st driver reported below the s-t min cut";
        let st = r.Partial_mincut.stats in
        ( "st-dinic (directed)",
          st.Partial_mincut.m_sparse,
          r.Partial_mincut.value,
          st.Partial_mincut.sparse_value,
          st.Partial_mincut.certified,
          st.Partial_mincut.fell_back )
      in
      (Ugraph.m g, exact, rows @ [ forced ], Digraph.m dg, dense_st, st_row))

(* --- report --- *)

let plan pl =
  let quality = List.map (fun b -> quality_stage pl b) q_betas in
  let speed = speed_stage pl in
  let drivers = drivers_stage pl in
  fun () ->
    Common.section
      "E24 Sparsify-then-solve: connectivity sampling + partial min-cut";
    let t =
      Table.create
        ~title:
          (Printf.sprintf
             "connectivity vs strength sampling at matched size (E13 family, \
              n=%d, eps=%.1f, %d cuts)"
             q_n q_eps 30)
        ~columns:
          [
            "beta"; "m"; "kept (strength)"; "worst err"; "kept (conn)";
            "worst err"; "rho"; "flows";
          ]
    in
    List.iter
      (fun node ->
        let beta, m, kept_b, err_b, kept_c, err_c, rho, flows =
          P.value pl node
        in
        (* The matched-size floor, re-verified from the artifact on every
           run, warm or cold: strictly better worst-cut error on a sketch
           that is no larger. *)
        if kept_c > kept_b then
          failwith
            (Printf.sprintf "E24: beta=%g conn sampler kept %d > %d edges" beta
               kept_c kept_b);
        if err_c >= err_b then
          failwith
            (Printf.sprintf
               "E24: beta=%g worst cut error %.4f not better than the \
                strength sampler's %.4f at matched size"
               beta err_c err_b);
        Table.add_row t
          [
            Printf.sprintf "%g" beta;
            Table.fint m;
            Table.fint kept_b;
            Table.fpct err_b;
            Table.fint kept_c;
            Table.fpct err_c;
            Table.ffloat ~digits:1 rho;
            Table.fint flows;
          ])
      quality;
    Table.print t;
    Common.note
      "same instance family and sampler recipe as E13 (strength-based for-all,";
    Common.note
      "c=0.5); the connectivity sampler must keep fewer edges AND have strictly";
    Common.note
      "smaller worst sampled-cut error — sharper lambda on tree edges inside";
    Common.note
      "dense regions, plus binomial weight resampling (variance w(1-p)/p^2 vs";
    Common.note "w^2(1-p)/p whole-edge) are where the win comes from (cf. E12).";
    print_newline ();
    let n, m, trials, dense_v, value, certified, fell_back, m', flows =
      P.value pl speed
    in
    let t =
      Table.create
        ~title:"end-to-end min-cut: dense Karger vs sparsify-then-solve"
        ~columns:
          [
            "n"; "edges"; "solved edges"; "trials"; "dense value"; "value";
            "certified"; "fell back"; "flows"; "d=1/2/4";
          ]
    in
    Table.add_row t
      [
        Table.fint n;
        Table.fint m;
        Table.fint m';
        Table.fint trials;
        Printf.sprintf "%g" dense_v;
        Printf.sprintf "%g" value;
        Table.fbool certified;
        Table.fbool fell_back;
        Table.fint flows;
        "identical";
      ];
    Table.print t;
    Common.note
      "floor: sparse pipeline (NI rounds + tier-chain estimates + binomial";
    Common.note
      "resampling + Karger + certify) >= 3x faster end-to-end than the dense";
    Common.note
      "solver at the same trial count — enforced on every cold run; the";
    Common.note
      "speedup is algorithmic (~6.6x fewer edges solved), so the floor holds";
    Common.note
      "on 1-core hosts. The instance is two dense blocks + 2 cross edges: the";
    Common.note
      "planted cut's lambda-hat sits below rho, so sampling keeps it exactly";
    Common.note
      "(p=1) and certification passes by construction; in-block edges saturate";
    Common.note
      "the triangle tier at the cap and carry the ~6.6x edge reduction.";
    Common.note "Wall-clock figures on stderr only.";
    print_newline ();
    let um, exact, rows, dm, dense_st, st_row = P.value pl drivers in
    let t =
      Table.create
        ~title:
          (Printf.sprintf
             "certify/repair drivers (undirected n=150 m=%d, SW exact %g; \
              directed n=160 m=%d, s-t flow %g)"
             um exact dm dense_st)
        ~columns:
          [
            "solver"; "solved edges"; "value"; "sparse value"; "certified";
            "fell back";
          ]
    in
    List.iter
      (fun (label, m', value, sparse_v, certified, fell_back) ->
        Table.add_row t
          [
            label;
            Table.fint m';
            Printf.sprintf "%g" value;
            (if Float.is_nan sparse_v then "-" else Printf.sprintf "%g" sparse_v);
            Table.fbool certified;
            Table.fbool fell_back;
          ])
      (rows @ [ st_row ]);
    Table.print t;
    Common.note
      "reported values are exact cut weights of the original graph (repair);";
    Common.note
      "the rho=0.05 row is the forced-violation path: the certifier rejects";
    Common.note
      "the gutted sparsifier and the dense rerun answers — slower, never wrong."

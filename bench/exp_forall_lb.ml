(* E4 — Theorem 1.2 / Lemmas 4.2-4.4: the for-all lower bound, scheduled
   as DAG stages.

   (a) The Lemma 4.3 population statistics (|L_high|, |L_low| as fractions
   of |L|) and the Lemma 4.4 capture rate |L_high ∩ Q| / |L_high| for the
   argmax subset Q.

   (b) Decode success for three decoders: the one-query strawman the paper
   rules out, the literal subset enumeration, and the polynomial top-k
   variant — against exact sketches and noisy oracles.

   (c) Bits against the Ω(nβ/ε²) curve.

   Stage graph: one instance stage per (beta, 1/eps²) configuration —
   shared with E19/E20 on the battery grid through [Pipelines] — feeding
   one Lemma 4.3/4.4 statistics stage per configuration and one decode
   stage per configuration x sketch kind (all three decoders run on the
   same instances inside one stage); the bits table is one closed-form
   stage. *)

open Dcs
module F = Forall_lb
module P = Pipelines

let lemma_cfgs = [ (1, 8); (1, 16); (2, 8); (2, 16); (4, 16) ]

let instances_for pl ~beta ~d =
  P.forall_instances pl ~beta ~d ~n:(2 * beta * d) ~trials:P.battery_trials

(* Lemma 4.3/4.4 statistics over the configuration's instance family.
   Artifact: (sum_high, sum_low, capture_num, capture_den, instances). *)
let lemma_stage pl ~beta ~d =
  let insts = instances_for pl ~beta ~d in
  let name = Printf.sprintf "forall.lemma43 b%d d%d" beta d in
  Sched.stage (P.dag pl) ~name ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep insts ]
    (fun () ->
      let n = 2 * beta * d in
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let k = F.block_size p in
      let arr = P.value pl insts in
      let sum_high = ref 0.0 and sum_low = ref 0.0 in
      let capture_num = ref 0 and capture_den = ref 0 in
      Array.iter
        (fun inst ->
          let high, low = F.lemma43_stats inst in
          sum_high := !sum_high +. (float_of_int high /. float_of_int k);
          sum_low := !sum_low +. (float_of_int low /. float_of_int k);
          (* Q from the argmax decoder on the exact graph. *)
          let q =
            F.topk_q_set p ~sketch_graph:inst.F.graph inst.F.target
              ~t:inst.F.gh.Gap_hamming.t
          in
          (* count how many of L_high landed in Q *)
          let a = inst.F.target in
          let quarter = float_of_int d /. 4.0 in
          let gap_half = float_of_int inst.F.gh.Gap_hamming.gap /. 2.0 in
          for i = 0 to k - 1 do
            let s =
              inst.F.gh.Gap_hamming.strings.(F.string_index_of_address p
                                               { a with F.i })
            in
            let overlap =
              float_of_int
                (Bitstring.intersection_size s inst.F.gh.Gap_hamming.t)
            in
            if overlap >= quarter +. gap_half then begin
              incr capture_den;
              if q.(i) then incr capture_num
            end
          done)
        arr;
      (!sum_high, !sum_low, !capture_num, !capture_den, Array.length arr))

type kind = Exact | Noisy of float (* factor of eps *)

let kinds = [ Exact; Noisy 0.5; Noisy 0.1; Noisy 0.02 ]
let kind_tag = function Exact -> "exact" | Noisy f -> Printf.sprintf "noisy%g" f

let kind_label p = function
  | Exact -> "exact"
  | Noisy factor -> Printf.sprintf "noisy eps'=%.3f" (factor *. F.eps p)

let sketch_of p = function
  | Exact -> fun _rng (inst : F.instance) -> Exact_sketch.create inst.F.graph
  | Noisy factor ->
      fun rng (inst : F.instance) ->
        Noisy_oracle.create ~mode:Noisy_oracle.Random rng
          ~eps:(factor *. F.eps p) inst.F.graph

type decode_counts = {
  single : int;
  enumerate : int option; (* None when k > 16 *)
  topk : int option;      (* None for non-graph-valued sketches *)
  total : int;
}

(* One (configuration, sketch kind) decode stage: all three decoders on
   the same instances, each trial's sketch built from its own split
   stream. *)
let decode_stage pl ~beta ~d kind =
  let insts = instances_for pl ~beta ~d in
  let name = Printf.sprintf "forall.decode b%d d%d %s" beta d (kind_tag kind) in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name)
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep insts ]
    (fun () ->
      let n = 2 * beta * d in
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let k = F.block_size p in
      let enum_ok = k <= 16 in
      let sketch_of = sketch_of p kind in
      let arr = P.value pl insts in
      let master = P.seed_rng name in
      let scratch = F.decode_scratch p in
      let single = ref 0 and enum = ref 0 and topk = ref 0 in
      let graph_based = ref true in
      Array.iteri
        (fun i inst ->
          let rng = Prng.split master i in
          let sk = sketch_of rng inst in
          let t = inst.F.gh.Gap_hamming.t in
          let want = F.correct_decision inst in
          if F.decode_single_query p ~query:sk.Sketch.query inst.F.target ~t
             = want
          then incr single;
          if enum_ok then
            if F.decode_enumerate ?graph:sk.Sketch.graph ~scratch p
                 ~query:sk.Sketch.query inst.F.target ~t
               = want
            then incr enum;
          match sk.Sketch.graph with
          | Some g ->
              if F.decode_topk p ~sketch_graph:g inst.F.target ~t = want then
                incr topk
          | None -> graph_based := false)
        arr;
      {
        single = !single;
        enumerate = (if enum_ok then Some !enum else None);
        topk = (if !graph_based then Some !topk else None);
        total = Array.length arr;
      })

let bits_cfgs =
  [
    (16, 1, 8); (32, 1, 16); (64, 1, 32); (32, 2, 8); (64, 2, 16); (128, 4, 16);
    (256, 4, 32); (512, 8, 32);
  ]

let bits_stage pl =
  Sched.stage (P.dag pl) ~name:"forall.bits" ~codec:(Sched.marshal_codec ())
    ~deps:[]
    (fun () ->
      List.map
        (fun (n, beta, d) ->
          let p = F.make_params ~beta ~inv_eps_sq:d n in
          (n, beta, d, F.bits_capacity p, F.codec_bits p))
        bits_cfgs)

let plan pl =
  let lemma_nodes =
    List.map (fun (beta, d) -> ((beta, d), lemma_stage pl ~beta ~d)) lemma_cfgs
  in
  let decode_nodes =
    List.map
      (fun (beta, d) ->
        ((beta, d), List.map (fun k -> (k, decode_stage pl ~beta ~d k)) kinds))
      P.battery
  in
  let bits = bits_stage pl in
  fun () ->
    Common.section "E4  Theorem 1.2 — for-all cut sketch lower bound";
    let t =
      Table.create
        ~title:
          (Printf.sprintf "Lemma 4.3 / 4.4 statistics (mean over %d instances)"
             P.battery_trials)
        ~columns:
          [
            "beta"; "1/eps^2"; "k"; "|L_high|/k"; "|L_low|/k";
            "capture |L_high∩Q|/|L_high|";
          ]
    in
    List.iter
      (fun ((beta, d), node) ->
        let sum_high, sum_low, capture_num, capture_den, trials =
          P.value pl node
        in
        let k = F.block_size (F.make_params ~beta ~inv_eps_sq:d (2 * beta * d)) in
        Table.add_row t
          [
            Table.fint beta;
            Table.fint d;
            Table.fint k;
            Table.ffloat ~digits:3 (sum_high /. float_of_int trials);
            Table.ffloat ~digits:3 (sum_low /. float_of_int trials);
            (if capture_den = 0 then "n/a"
             else
               Table.ffloat ~digits:3
                 (float_of_int capture_num /. float_of_int capture_den));
          ])
      lemma_nodes;
    Table.print t;
    Common.note
      "Lemma 4.3 expects both fractions in [1/2 - 10c, 1/2] as c -> 0 (larger";
    Common.note
      "1/eps^2 gives finer gaps, pushing the fractions up); Lemma 4.4 expects";
    Common.note "capture >= 4/5, which holds with margin.";
    print_newline ();
    let t =
      Table.create
        ~title:
          "decode success: one-query strawman vs Lemma 4.4 decoders (Thm 1.2)"
        ~columns:
          [ "beta"; "1/eps^2"; "sketch"; "single-query"; "enumerate"; "top-k" ]
    in
    List.iter
      (fun ((beta, d), cells) ->
        let p = F.make_params ~beta ~inv_eps_sq:d (2 * beta * d) in
        List.iter
          (fun (kind, node) ->
            let c = P.value pl node in
            let rate n = float_of_int n /. float_of_int c.total in
            Table.add_row t
              [
                Table.fint beta;
                Table.fint d;
                kind_label p kind;
                Printf.sprintf "%.2f" (rate c.single);
                (match c.enumerate with
                | Some n -> Printf.sprintf "%.2f" (rate n)
                | None -> "skipped (k>16)");
                (match c.topk with
                | Some n -> Printf.sprintf "%.2f" (rate n)
                | None -> "n/a");
              ])
          cells;
        Table.add_rule t)
      decode_nodes;
    Table.print t;
    Common.note
      "the single-query decoder needs accuracy ~ eps^2 (its signal Θ(1/ε) \
       hides";
    Common.note
      "under a Θ(β/ε⁴) cut), while the subset decoders survive at Θ(ε) \
       accuracy —";
    Common.note "the separation that drives the Section 4 reduction.";
    print_newline ();
    let t =
      Table.create ~title:"raw Gap-Hamming bits vs the Ω(n·β/ε²) curve"
        ~columns:
          [ "n"; "beta"; "1/eps^2"; "bits h/ε²"; "n·β/ε²"; "ratio"; "codec kbits" ]
    in
    List.iter
      (fun (n, beta, d, cap, codec_bits) ->
        let bound = float_of_int (n * beta * d) in
        Table.add_row t
          [
            Table.fint n;
            Table.fint beta;
            Table.fint d;
            Table.fint cap;
            Table.ffloat ~digits:0 bound;
            Table.ffloat ~digits:3 (float_of_int cap /. bound);
            Common.kbits codec_bits;
          ])
      (P.value pl bits);
    Table.print t;
    Common.note
      "ratio = |input| / (nβ/ε²) is Θ(1) over the whole grid; the codec \
       stores";
    Common.note
      "exactly those bits and answers every cut query, matching the bound."

(* E3 — Theorem 1.1: the for-each lower bound, scheduled as DAG stages.

   (a) Decode success: against the exact sketch (information-theoretic best
   case) and against (1 ± ε') oracles at multiples of the paper's accuracy
   threshold ε* = ε/ln(1/ε). Success >= 2/3 below the threshold is exactly
   the property the reduction needs; collapse above it shows the accuracy
   requirement is real.

   (b) Bits: the number of decodable bits |s| against the Ω̃(n√β/ε) curve,
   and the instance-codec (matching upper bound) size.

   Stage graph: one instance stage per configuration (shared through
   [Pipelines] with any experiment drawing the same family), one decode
   stage per configuration x sketch kind, and a closed-form bits stage.
   [plan] declares the stages against the caller's DAG and returns the
   report closure that renders the tables from the (cached or computed)
   artifacts after [Sched.run]. *)

open Dcs
module F = Foreach_lb
module P = Pipelines

let trials = 3
let bits_per_trial = 60

let success_cfgs =
  [ (1, 8, 64); (1, 16, 64); (1, 8, 256); (4, 8, 64); (4, 16, 128); (16, 8, 128) ]

type kind = Exact | Noisy of float (* factor of eps* *)

let kinds = [ Exact; Noisy 0.0625; Noisy 0.25; Noisy 1.0; Noisy 4.0 ]
let kind_tag = function Exact -> "exact" | Noisy f -> Printf.sprintf "noisy%g" f

let sketch_of p inv_eps = function
  | Exact -> fun _rng (inst : F.instance) -> Exact_sketch.create inst.F.graph
  | Noisy factor ->
      let eps_star = F.eps p /. log (float_of_int inv_eps) in
      fun rng (inst : F.instance) ->
        Noisy_oracle.create ~mode:Noisy_oracle.Random rng
          ~eps:(factor *. eps_star) inst.F.graph

(* One (configuration, sketch kind) decode stage: builds a sketch per
   instance from its own split stream and decodes [bits_per_trial] random
   bit indices against it. Artifact: (correct, total). *)
let decode_stage pl ~beta ~inv_eps ~n kind =
  let insts = P.foreach_instances pl ~beta ~inv_eps ~n ~trials in
  let name =
    Printf.sprintf "foreach.decode b%d e%d n%d %s" beta inv_eps n
      (kind_tag kind)
  in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name)
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep insts ]
    (fun () ->
      let p = F.make_params ~beta ~inv_eps n in
      let sketch_of = sketch_of p inv_eps kind in
      let arr = P.value pl insts in
      let master = P.seed_rng name in
      let correct = ref 0 in
      for t = 0 to trials - 1 do
        let rng = Prng.split master t in
        let sk = sketch_of rng arr.(t) in
        for _ = 1 to bits_per_trial do
          let q = Prng.int rng (F.bits_capacity p) in
          let r = F.decode_bit p ~query:sk.Sketch.query q in
          if r.F.decoded = arr.(t).F.s.(q) then incr correct
        done
      done;
      (!correct, trials * bits_per_trial))

let bits_cfgs =
  [
    (64, 1, 4); (64, 1, 8); (64, 1, 16); (256, 1, 8); (256, 1, 16); (1024, 1, 16);
    (256, 4, 8); (512, 4, 16); (512, 16, 8); (1024, 16, 16);
  ]

let bits_stage pl =
  Sched.stage (P.dag pl) ~name:"foreach.bits" ~codec:(Sched.marshal_codec ())
    ~deps:[]
    (fun () ->
      List.map
        (fun (n, beta, inv_eps) ->
          let p = F.make_params ~beta ~inv_eps n in
          let cap = F.bits_capacity p in
          let bound =
            float_of_int n *. sqrt (float_of_int beta) *. float_of_int inv_eps
          in
          let rng = Prng.create 42 in
          let inst = F.random_instance rng p in
          let exact = Exact_sketch.create inst.F.graph in
          (n, beta, inv_eps, cap, bound, F.codec_bits p, exact.Sketch.size_bits))
        bits_cfgs)

let plan pl =
  let decode_nodes =
    List.map
      (fun (beta, inv_eps, n) ->
        ( (beta, inv_eps, n),
          List.map (fun k -> (k, decode_stage pl ~beta ~inv_eps ~n k)) kinds ))
      success_cfgs
  in
  let bits = bits_stage pl in
  fun () ->
    Common.section "E3  Theorem 1.1 — for-each cut sketch lower bound";
    let t =
      Table.create
        ~title:
          "decode success vs sketch accuracy (eps* = eps/ln(1/eps); threshold \
           of Thm 1.1)"
        ~columns:
          [
            "beta"; "1/eps"; "n"; "exact"; "eps'=eps*/16"; "eps'=eps*/4";
            "eps'=eps*"; "eps'=4eps*";
          ]
    in
    List.iter
      (fun ((beta, inv_eps, n), cells) ->
        let cell kind =
          let correct, total = P.value pl (List.assoc kind cells) in
          Printf.sprintf "%.2f" (float_of_int correct /. float_of_int total)
        in
        Table.add_row t
          [
            Table.fint beta;
            Table.fint inv_eps;
            Table.fint n;
            cell Exact;
            cell (Noisy 0.0625);
            cell (Noisy 0.25);
            cell (Noisy 1.0);
            cell (Noisy 4.0);
          ])
      decode_nodes;
    Table.print t;
    print_newline ();
    let t =
      Table.create
        ~title:"decodable bits vs the Ω̃(n·√β/ε) lower-bound curve"
        ~columns:
          [
            "n"; "beta"; "1/eps"; "|s| bits"; "n·√β/ε"; "ratio"; "codec kbits";
            "exact-sketch kbits";
          ]
    in
    List.iter
      (fun (n, beta, inv_eps, cap, bound, codec_bits, exact_bits) ->
        Table.add_row t
          [
            Table.fint n;
            Table.fint beta;
            Table.fint inv_eps;
            Table.fint cap;
            Table.ffloat ~digits:0 bound;
            Table.ffloat ~digits:3 (float_of_int cap /. bound);
            Common.kbits codec_bits;
            Common.kbits exact_bits;
          ])
      (P.value pl bits);
    Table.print t;
    Common.note
      "ratio = |s| / (n√β/ε) stays Θ(1) across n, β, ε: the construction \
       stores";
    Common.note
      "a bit string of exactly the lower-bound size, and the codec (a true cut";
    Common.note
      "data structure answering queries exactly) matches it, so the bound is \
       tight."

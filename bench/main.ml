(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- --only E3 E7
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --skip-slow   # skip the SW-heavy ones *)

let experiments =
  [
    ("E1", "Lemma 3.2 decode matrix", false, Exp_matrix.run);
    ("E2", "Figure 1 cut anatomy", false, Exp_fig1.run);
    ("E3", "Theorem 1.1 for-each lower bound", false, Exp_foreach_lb.run);
    ("E4", "Theorem 1.2 for-all lower bound", false, Exp_forall_lb.run);
    ("E5", "Lemma 5.5 G_{x,y} min cut", false, Exp_gxy.run);
    ("E6", "Theorem 1.3 query lower bound", false, Exp_query_lb.run);
    ("E7", "Theorem 5.7 schedule ablation", true, Exp_upper_query.run);
    ("E8", "Tightness: sketch sizes vs bounds", false, Exp_tightness.run);
    ("E9", "Distributed min-cut", true, Exp_distributed.run);
    ("E10", "Bechamel timings", false, Exp_timing.run);
    ("E11", "Naive vs Hadamard encoding ablation", false, Exp_naive.run);
    ("E12", "Sampling measures: strengths vs resistances", false, Exp_spectral.run);
    ("E13", "Beta-scaling of directed sparsifiers", false, Exp_beta_scaling.run);
    ("E14", "Cut counting / enumeration coverage", false, Exp_cut_counting.run);
    ("E15", "Imbalance decomposition sketch", false, Exp_imbalance.run);
    ("E16", "Fault injection: robustness overhead", false, Exp_fault.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse only skip_slow = function
    | [] -> (only, skip_slow)
    | "--list" :: _ ->
        List.iter
          (fun (id, desc, slow, _) ->
            Printf.printf "%-4s %s%s\n" id desc (if slow then " (slow)" else ""))
          experiments;
        exit 0
    | "--skip-slow" :: rest -> parse only true rest
    | "--only" :: rest ->
        let ids, rest' =
          let rec take acc = function
            | x :: tl when String.length x > 0 && x.[0] <> '-' -> take (x :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          take [] rest
        in
        parse (only @ ids) skip_slow rest'
    | x :: _ ->
        Printf.eprintf "unknown argument %S (try --list)\n" x;
        exit 2
  in
  let only, skip_slow = parse [] false args in
  print_endline
    "Reproduction benchmarks: Tight Lower Bounds for Directed Cut \
     Sparsification and Distributed Min-Cut (PODS 2024)";
  let started = Sys.time () in
  List.iter
    (fun (id, _, slow, run) ->
      let selected =
        (match only with [] -> true | ids -> List.mem id ids)
        && not (skip_slow && slow && only = [])
      in
      if selected then begin
        let t0 = Sys.time () in
        run ();
        Printf.printf "  [%s done in %.1fs]\n" id (Sys.time () -. t0)
      end)
    experiments;
  Printf.printf "\nall selected experiments done in %.1fs\n" (Sys.time () -. started)

(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- --only E3 E7
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --skip-slow   # skip the SW-heavy ones

   Scheduled experiments (E3, E4, E19, E20) declare their work as stages
   of ONE merged DAG (Dcs.Sched): shared instance families and frozen CSR
   views compute once, independent stages run across domains, and every
   stage artifact is memoized in a content-addressed store. Their report
   closures render the tables from the (computed or cached) artifacts
   after the single [Sched.run], so stdout is unchanged from the serial
   harness.
     --sched-cache DIR    spill stage artifacts to DIR (CRC-guarded via
                          Dcs.Checkpoint) and reuse them across runs; the
                          scheduler summary goes to stderr

   Checkpoint/resume (checkpoint-aware experiments: E16, E17):
     --checkpoint DIR     snapshot completed trials into DIR (one .ckpt
                          file per sweep), written atomically after every
                          block of trials
     --resume             restore completed trials from DIR's snapshots
                          instead of starting cold
     --abort-after N      simulate a kill: exit with status 3 once N
                          trials have been newly computed and checkpointed
                          (used by bin/check_determinism.sh's
                          kill-then-resume cycle)

   Checkpoint chatter goes to stderr; stdout is byte-identical between a
   resumed run and an uninterrupted one.

   Machine-readable output:
     --json PATH          capture every printed table and write the run as
                          JSON (tables grouped per experiment, plus the
                          Obs.Metrics registry snapshot)
     DCS_METRICS, DCS_TRACE (environment) are honored as documented in the
     README's Observability section. *)

(* Legacy experiments run as a closure; scheduled ones declare DAG stages
   against the shared [Pipelines] at plan time and return the report
   closure to call after [Sched.run]. *)
type runner = Legacy of (unit -> unit) | Planned of (Pipelines.t -> unit -> unit)

let experiments =
  [
    ("E1", "Lemma 3.2 decode matrix", false, Legacy Exp_matrix.run);
    ("E2", "Figure 1 cut anatomy", false, Legacy Exp_fig1.run);
    ("E3", "Theorem 1.1 for-each lower bound", false, Planned Exp_foreach_lb.plan);
    ("E4", "Theorem 1.2 for-all lower bound", false, Planned Exp_forall_lb.plan);
    ("E5", "Lemma 5.5 G_{x,y} min cut", false, Legacy Exp_gxy.run);
    ("E6", "Theorem 1.3 query lower bound", false, Legacy Exp_query_lb.run);
    ("E7", "Theorem 5.7 schedule ablation", true, Legacy Exp_upper_query.run);
    ("E8", "Tightness: sketch sizes vs bounds", false, Legacy Exp_tightness.run);
    ("E9", "Distributed min-cut", true, Legacy Exp_distributed.run);
    ("E10", "Bechamel timings", false, Legacy Exp_timing.run);
    ("E11", "Naive vs Hadamard encoding ablation", false, Legacy Exp_naive.run);
    ("E12", "Sampling measures: strengths vs resistances", false, Legacy Exp_spectral.run);
    ("E13", "Beta-scaling of directed sparsifiers", false, Legacy Exp_beta_scaling.run);
    ("E14", "Cut counting / enumeration coverage", false, Legacy Exp_cut_counting.run);
    ("E15", "Imbalance decomposition sketch", false, Legacy Exp_imbalance.run);
    ("E16", "Fault injection: robustness overhead", false, Legacy Exp_fault.run);
    ("E17", "Chaos harness: supervision + checkpoint recovery", false, Legacy Exp_chaos.run);
    ("E18", "Profiling: instrumented 1.1/1.3 pipelines", false, Legacy Exp_profile.run);
    ("E19", "Representation: frozen CSR vs hashtable adjacency", false,
     Planned (Exp_repr.plan ~floors:true));
    ("E20", "Batched kernels + chunked pool: multicore throughput", false,
     Planned (Exp_batched.plan ~floors:true));
    ("E21", "dcutd serving layer: admission control + degradation", false, Legacy Exp_serve.run);
    ("E22", "Streaming ingest: WAL recovery + adversarial tolerance", false, Legacy Exp_stream.run);
    ("E23", "Scheduler: cached-vs-cold identity + cache-hit floor", false, Legacy Exp_sched.run);
    ("E24", "Sparsify-then-solve: connectivity sampling + partial min-cut", false,
     Planned Exp_sparsolve.plan);
  ]

let json_path : string option ref = ref None
let sched_cache : string option ref = ref None

(* (experiment id, first captured-table index, one past the last) — filled
   as experiments run so the JSON dump can group tables per experiment. *)
let json_groups : (string * int * int) list ref = ref []

let write_json path =
  let tables = Array.of_list (Dcs.Table.captured ()) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"experiments\":[";
  List.iteri
    (fun i (id, start, stop) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":\"%s\",\"tables\":[" id);
      for j = start to stop - 1 do
        if j > start then Buffer.add_char buf ',';
        Buffer.add_string buf (Dcs.Table.to_json tables.(j))
      done;
      Buffer.add_string buf "]}")
    (List.rev !json_groups);
  Buffer.add_string buf "],\"metrics\":";
  Buffer.add_string buf (Dcs.Obs.Report.snapshot_json ());
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let () =
  Printexc.record_backtrace true;
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse only skip_slow = function
    | [] -> (only, skip_slow)
    | "--list" :: _ ->
        List.iter
          (fun (id, desc, slow, _) ->
            Printf.printf "%-4s %s%s\n" id desc (if slow then " (slow)" else ""))
          experiments;
        exit 0
    | "--skip-slow" :: rest -> parse only true rest
    | "--checkpoint" :: dir :: rest ->
        Common.checkpoint_dir := Some dir;
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        parse only skip_slow rest
    | "--sched-cache" :: dir :: rest ->
        sched_cache := Some dir;
        parse only skip_slow rest
    | "--resume" :: rest ->
        Common.resume_requested := true;
        parse only skip_slow rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        Dcs.Table.set_capture true;
        parse only skip_slow rest
    | "--abort-after" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            Common.abort_countdown := Some n;
            parse only skip_slow rest
        | _ ->
            Printf.eprintf "--abort-after needs a nonnegative integer\n";
            exit 2)
    | "--only" :: rest ->
        let ids, rest' =
          let rec take acc = function
            | x :: tl when String.length x > 0 && x.[0] <> '-' -> take (x :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          take [] rest
        in
        parse (only @ ids) skip_slow rest'
    | x :: _ ->
        Printf.eprintf "unknown argument %S (try --list)\n" x;
        exit 2
  in
  let only, skip_slow = parse [] false args in
  List.iter
    (fun id ->
      if not (List.exists (fun (i, _, _, _) -> i = id) experiments) then begin
        Printf.eprintf "unknown experiment id %S (try --list)\n" id;
        exit 2
      end)
    only;
  if !Common.abort_countdown <> None && !Common.checkpoint_dir = None then begin
    Printf.eprintf "--abort-after requires --checkpoint\n";
    exit 2
  end;
  print_endline
    "Reproduction benchmarks: Tight Lower Bounds for Directed Cut \
     Sparsification and Distributed Min-Cut (PODS 2024)";
  let started = Sys.time () in
  let chosen =
    List.filter
      (fun (id, _, slow, _) ->
        (match only with [] -> true | ids -> List.mem id ids)
        && not (skip_slow && slow && only = []))
      experiments
  in
  (* Plan every scheduled experiment against one shared DAG first — that
     is what merges their common instance/freeze stages into single
     vertices — then run the DAG once; the per-experiment loop below only
     renders tables from artifacts. *)
  let pl =
    lazy (Pipelines.create (Dcs.Sched.Store.create ?dir:!sched_cache ()))
  in
  let runners =
    List.map
      (fun (id, _, _, r) ->
        match r with
        | Legacy f -> (id, f)
        | Planned plan -> (id, plan (Lazy.force pl)))
      chosen
  in
  if Lazy.is_val pl then begin
    let rep = Dcs.Sched.run (Pipelines.dag (Lazy.force pl)) in
    Printf.eprintf
      "[sched: %d stages, %d levels, %d ran (%d pooled, %d serial), %d cache \
       hits]\n\
       %!"
      rep.Dcs.Sched.stages rep.Dcs.Sched.levels rep.Dcs.Sched.ran
      rep.Dcs.Sched.pooled_ran rep.Dcs.Sched.serial_ran rep.Dcs.Sched.hits
  end;
  (try
     List.iter
       (fun (id, run) ->
         let t0 = Sys.time () in
         let captured_before = Dcs.Table.captured_count () in
         run ();
         if !json_path <> None then
           json_groups :=
             (id, captured_before, Dcs.Table.captured_count ())
             :: !json_groups;
         Printf.printf "  [%s done in %.1fs]\n" id (Sys.time () -. t0))
       runners
   with Dcs.Checkpoint.Interrupted { path; completed_now } ->
     Printf.eprintf
       "\n[interrupted by --abort-after: %d trials newly checkpointed, last \
        snapshot %s — rerun with --resume to continue]\n"
       completed_now path;
     exit 3);
  Printf.printf "\nall selected experiments done in %.1fs\n" (Sys.time () -. started);
  Option.iter write_json !json_path;
  Dcs.Obs.Report.dump_env ()

(* E23 — the scheduler's own contract: a warm rerun of the scheduled
   experiment DAG must be indistinguishable from a cold one except for the
   work it skipped.

   Part A replays the full E3/E4/E19/E20 merged DAG twice against one
   in-memory artifact store and enforces:

   - stdout of the report closures byte-identical, cold vs warm (the
     artifacts carry every number the tables print, so a cache hit and a
     recomputation must render the same bytes);
   - a cache-hit floor on the warm run: >= 50% of offered stages served
     from the store (it measures 100% here — the floor leaves room for
     future DAGs with deliberately uncacheable stages);
   - the structural identity offered = hits + runs on both reports, and
     the same identity on the global sched.* registry deltas, E18-style.

   Part B drops to the disk tier with the E3 pipeline alone: cold run
   spills every artifact through Dcs.Checkpoint, a fresh store rehydrates
   them all (zero stage runs), a bit-flipped artifact is rejected by the
   CRC frame and forces exactly that stage to recompute — never a wrong
   cache hit — and the recomputation's write-through repairs the file, so
   a fourth run is all-hits again. Stdout is byte-identical in all four.

   The floors-free plans are used (plan ~floors:false): cache behavior
   must not depend on wall-clock luck. All stdout here is counts and
   flags, byte-identical across DCS_DOMAINS for the determinism gate. *)

open Dcs
module P = Pipelines

let all_agree = ref true

let check t invariant ~expected ~registry =
  let ok = expected = registry in
  if not ok then all_agree := false;
  Table.add_row t
    [ invariant; Table.fint expected; Table.fint registry; Table.fbool ok ]

(* Redirect fd 1 into a temp file around [f] and return its bytes: the
   cached-vs-cold contract is over the exact bytes a user would see, so it
   is checked at the file-descriptor level, not via formatter plumbing. *)
let with_stdout_capture f =
  let tmp = Filename.temp_file "dcs_e23_out" ".txt" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  let r =
    try f ()
    with e ->
      restore ();
      Sys.remove tmp;
      raise e
  in
  restore ();
  let ic = open_in_bin tmp in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (r, out)

(* Plan the given experiments on a fresh DAG over [store], run it, render
   the reports; returns the scheduler report and the captured stdout. *)
let run_plans store plan_fns =
  let pl = P.create store in
  let reports = List.map (fun plan -> plan pl) plan_fns in
  let rep = ref None in
  let (), out =
    with_stdout_capture (fun () ->
        rep := Some (Sched.run (P.dag pl));
        List.iter (fun render -> render ()) reports)
  in
  (Option.get !rep, out)

let full_plans =
  [
    Exp_foreach_lb.plan;
    Exp_forall_lb.plan;
    Exp_repr.plan ~floors:false;
    Exp_batched.plan ~floors:false;
  ]

let structural (rep : Sched.report) tag =
  if rep.Sched.offered <> rep.Sched.hits + rep.Sched.ran then
    failwith
      (Printf.sprintf "E23: %s run breaks offered = hits + runs (%d <> %d + %d)"
         tag rep.Sched.offered rep.Sched.hits rep.Sched.ran)

let memory_tier () =
  let store = Sched.Store.create () in
  let po = Common.probe "sched.stages_offered" in
  let pr = Common.probe "sched.stage_runs" in
  let ph = Common.probe "sched.cache_hits" in
  let cold, out_cold = run_plans store full_plans in
  let warm, out_warm = run_plans store full_plans in
  structural cold "cold";
  structural warm "warm";
  if not (String.equal out_cold out_warm) then
    failwith "E23: warm stdout differs from cold stdout";
  let hit_rate =
    float_of_int warm.Sched.hits /. float_of_int (max 1 warm.Sched.offered)
  in
  if hit_rate < 0.5 then
    failwith
      (Printf.sprintf "E23: warm cache-hit rate %.2f below the 0.5 floor"
         hit_rate);
  let t =
    Table.create
      ~title:"cold vs warm: full E3/E4/E19/E20 DAG on one in-memory store"
      ~columns:[ "metric"; "cold"; "warm" ]
  in
  let row name f = Table.add_row t [ name; Table.fint (f cold); Table.fint (f warm) ] in
  row "stages" (fun r -> r.Sched.stages);
  row "levels" (fun r -> r.Sched.levels);
  row "offered" (fun r -> r.Sched.offered);
  row "ran" (fun r -> r.Sched.ran);
  row "ran (pooled)" (fun r -> r.Sched.pooled_ran);
  row "ran (serial)" (fun r -> r.Sched.serial_ran);
  row "cache hits" (fun r -> r.Sched.hits);
  Table.add_row t
    [ "stdout bytes"; Table.fint (String.length out_cold); "identical" ];
  Table.print t;
  Common.note "warm hit rate %.2f (floor 0.50); report tables render from"
    hit_rate;
  Common.note "artifacts, so a hit and a recomputation print the same bytes.";
  let ct =
    Table.create ~title:"sched.* registry vs scheduler reports (both runs)"
      ~columns:[ "invariant"; "expected"; "registry"; "agree" ]
  in
  check ct "sched.stages_offered = offered"
    ~expected:(cold.Sched.offered + warm.Sched.offered)
    ~registry:(Common.delta po);
  check ct "sched.stage_runs + sched.cache_hits = offered"
    ~expected:(cold.Sched.offered + warm.Sched.offered)
    ~registry:(Common.delta pr + Common.delta ph);
  check ct "sched.stage_runs = ran"
    ~expected:(cold.Sched.ran + warm.Sched.ran)
    ~registry:(Common.delta pr);
  Table.print ct;
  if not !all_agree then
    failwith "E23: sched registry disagrees with the scheduler reports"

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let flip_middle_byte path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

type tier_row = {
  phase : string;
  rep : Sched.report;
  spills : int;
  disk_hits : int;
  corrupt : int;
}

let disk_tier () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dcs_e23_cache_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let phase name =
    let ps = Common.probe "sched.store_spills" in
    let pd = Common.probe "sched.store_disk_hits" in
    let pc = Common.probe "sched.store_corrupt_rejected" in
    (* A fresh store each phase: the memory tier must not mask the disk. *)
    let rep, out = run_plans (Sched.Store.create ~dir ()) [ Exp_foreach_lb.plan ] in
    structural rep name;
    ( { phase = name; rep; spills = Common.delta ps;
        disk_hits = Common.delta pd; corrupt = Common.delta pc },
      out )
  in
  let cold, out_cold = phase "cold" in
  let warm, out_warm = phase "rehydrate" in
  let victim =
    let arts =
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".art")
      |> List.sort compare
    in
    match arts with
    | [] -> failwith "E23: cold run spilled no artifacts"
    | a :: _ -> Filename.concat dir a
  in
  flip_middle_byte victim;
  let damaged, out_damaged = phase "bit-flipped" in
  let repaired, out_repaired = phase "repaired" in
  rm_rf dir;
  List.iter
    (fun (tag, out) ->
      if not (String.equal out_cold out) then
        failwith (Printf.sprintf "E23: %s stdout differs from cold" tag))
    [ ("rehydrate", out_warm); ("bit-flipped", out_damaged);
      ("repaired", out_repaired) ];
  if cold.spills = 0 then failwith "E23: cold run spilled nothing to disk";
  if warm.rep.Sched.ran <> 0 then
    failwith "E23: rehydrating run recomputed despite intact artifacts";
  if damaged.corrupt < 1 then
    failwith "E23: bit-flipped artifact was not rejected";
  if damaged.rep.Sched.ran < 1 then
    failwith "E23: bit-flipped artifact did not force a recompute";
  if repaired.rep.Sched.ran <> 0 then
    failwith "E23: write-through did not repair the damaged artifact";
  let t =
    Table.create
      ~title:"disk tier (E3 pipeline, fresh store per phase): damage forces \
              recompute, never a wrong hit"
      ~columns:[ "phase"; "offered"; "ran"; "hits"; "spills"; "disk hits";
                 "corrupt"; "stdout" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.phase;
          Table.fint r.rep.Sched.offered;
          Table.fint r.rep.Sched.ran;
          Table.fint r.rep.Sched.hits;
          Table.fint r.spills;
          Table.fint r.disk_hits;
          Table.fint r.corrupt;
          (if r.phase = "cold" then "baseline" else "identical");
        ])
    [ cold; warm; damaged; repaired ];
  Table.print t;
  Common.note "artifacts ride Dcs.Checkpoint's CRC frames: the flipped byte is";
  Common.note "rejected at load, only that stage reruns (dependents still hit —";
  Common.note "the recomputed bytes hash to the same key), and the write-through";
  Common.note "put repairs the file for the final all-hits run."

let run () =
  Common.section "E23 Scheduler: cached-vs-cold identity + cache-hit floor";
  memory_tier ();
  print_newline ();
  disk_tier ()

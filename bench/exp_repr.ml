(* E19 — Representation: frozen CSR arrays vs hashtable adjacency on the
   cut-evaluation hot paths.

   Three claims are checked, all with the old path still executed as the
   reference:

   (a) The Lemma 4.4 enumerate decoder over the E4 battery grid and on a
   4-chain instance: the CSR walk (one frozen build, one seed cut, then
   [Csr.cut_delta] per membership flip) must return the SAME decision as
   the per-subset full-query path on every instance — the encoder weights
   {1, 2, 1/β} are dyadic for β a power of two, so both float summation
   orders are exact and the argmax matches bit for bit. Aggregate speedups
   are enforced (>= 2x on the battery, >= 5x on the enumerate instance) but
   their wall-clock values go to stderr only: stdout carries counts and
   agreement flags, and stays byte-identical across DCS_DOMAINS
   (bin/check_determinism.sh diffs it at 1 vs 4 domains).

   (b) k = 24: the CSR path decodes C(24,12) ≈ 2.7M subsets in seconds —
   the configuration the old [k > 20] guard rejected outright.

   (c) A Karger repetition sweep: every repetition's CSR-evaluated cut
   value must equal a from-scratch hashtable recomputation exactly
   (integer weights), and the csr.* registry counters must agree with
   closed-form expectations, E18-style. *)

open Dcs
module F = Forall_lb
module M = Obs.Metrics

type probe = { counter : M.counter; before : int }

let probe name =
  let c = M.counter name in
  { counter = c; before = M.counter_value c }

let delta p = M.counter_value p.counter - p.before

let all_agree = ref true

let check t invariant ~expected ~registry =
  let ok = expected = registry in
  if not ok then all_agree := false;
  Table.add_row t
    [ invariant; Table.fint expected; Table.fint registry; Table.fbool ok ]

let binom n k =
  let k = min k (n - k) in
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let speedup ~ref_s ~csr_s = ref_s /. Float.max csr_s 1e-9

(* Decode every pre-generated instance through both paths; returns
   (decisions agree, ref seconds, csr seconds). The reference path queries
   the instance graph's hashtables directly (the pre-CSR behavior); the CSR
   path freezes the same graph per decode. *)
let decode_both p insts =
  let n = Array.length insts in
  let decode i ~frozen =
    let inst = insts.(i) in
    let g = inst.F.graph in
    let graph = if frozen then Some g else None in
    F.decode_enumerate ?graph p
      ~query:(fun s -> Cut.value g s)
      inst.F.target ~t:inst.F.gh.Gap_hamming.t
  in
  let ref_dec = Array.make n F.Delta_high in
  let csr_dec = Array.make n F.Delta_high in
  let (), ref_s =
    time (fun () ->
        for i = 0 to n - 1 do
          ref_dec.(i) <- decode i ~frozen:false
        done)
  in
  let (), csr_s =
    time (fun () ->
        for i = 0 to n - 1 do
          csr_dec.(i) <- decode i ~frozen:true
        done)
  in
  (ref_dec = csr_dec, ref_s, csr_s)

let instances rng p ~trials =
  let master = Prng.fork rng in
  Array.init trials (fun i -> F.random_instance (Prng.split master i) p)

let battery_table rng =
  let t =
    Table.create
      ~title:
        "E4 decode battery, Lemma 4.4 enumerate: per-subset queries vs frozen CSR"
      ~columns:
        [ "beta"; "1/eps^2"; "n"; "k"; "decodes"; "subsets/decode"; "decisions" ]
  in
  let total_ref = ref 0.0 and total_csr = ref 0.0 in
  List.iter
    (fun (beta, d) ->
      let n = 2 * beta * d in
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let k = F.block_size p in
      let trials = 20 in
      let insts = instances rng p ~trials in
      let agree, ref_s, csr_s = decode_both p insts in
      if not agree then
        failwith "E19: decode decisions diverge between representations";
      total_ref := !total_ref +. ref_s;
      total_csr := !total_csr +. csr_s;
      Printf.eprintf "  [E19 battery beta=%d 1/eps^2=%d: ref %.3fs, csr %.3fs, %.1fx]\n%!"
        beta d ref_s csr_s (speedup ~ref_s ~csr_s);
      Table.add_row t
        [
          Table.fint beta; Table.fint d; Table.fint n; Table.fint k;
          Table.fint trials;
          Table.fint (binom k (k / 2));
          "identical";
        ])
    [ (1, 8); (2, 8); (1, 16) ];
  Table.print t;
  let s = speedup ~ref_s:!total_ref ~csr_s:!total_csr in
  Printf.eprintf "  [E19 battery total: ref %.3fs, csr %.3fs, speedup %.1fx]\n%!"
    !total_ref !total_csr s;
  if s < 2.0 then
    failwith
      (Printf.sprintf "E19: decode battery speedup %.2fx < 2x" s);
  Common.note
    "decisions identical on every instance; aggregate speedup >= 2x enforced";
  Common.note "(wall-clock figures on stderr, excluded from the determinism diff)."

let enumerate_table rng =
  let t =
    Table.create
      ~title:"enumerate decoder: 4-chain k=16 (both paths) and k=24 (CSR only)"
      ~columns:[ "beta"; "1/eps^2"; "n"; "k"; "decodes"; "subsets/decode"; "result" ]
  in
  (* k = 16 on the 4-chain graph: the reference path pays O(n + m) per
     subset, the CSR path O(degree) per flip. *)
  let p16 = F.make_params ~beta:1 ~inv_eps_sq:16 64 in
  let insts16 = instances rng p16 ~trials:8 in
  let agree, ref_s, csr_s = decode_both p16 insts16 in
  if not agree then
    failwith "E19: enumerate decisions diverge between representations";
  let s = speedup ~ref_s ~csr_s in
  Printf.eprintf "  [E19 enumerate k=16: ref %.3fs, csr %.3fs, speedup %.1fx]\n%!"
    ref_s csr_s s;
  if s < 5.0 then
    failwith (Printf.sprintf "E19: enumerate decoder speedup %.2fx < 5x" s);
  Table.add_row t
    [
      "1"; "16"; "64"; "16"; "8";
      Table.fint (binom 16 8);
      "decisions identical";
    ];
  (* k = 24 (the old guard rejected k > 20): C(24,12) subsets per decode,
     tractable only incrementally. The decode is deterministic, so the
     correctness count is stdout-safe. *)
  let p24 = F.make_params ~beta:2 ~inv_eps_sq:12 48 in
  let insts24 = instances rng p24 ~trials:3 in
  let correct = ref 0 in
  let (), csr24_s =
    time (fun () ->
        Array.iter
          (fun inst ->
            let g = inst.F.graph in
            let d =
              F.decode_enumerate ~graph:g p24
                ~query:(fun s -> Cut.value g s)
                inst.F.target ~t:inst.F.gh.Gap_hamming.t
            in
            if d = F.correct_decision inst then incr correct)
          insts24)
  in
  Printf.eprintf "  [E19 enumerate k=24: csr %.3fs for 3 decodes]\n%!" csr24_s;
  Table.add_row t
    [
      "2"; "12"; "48"; "24"; "3";
      Table.fint (binom 24 12);
      Printf.sprintf "csr only, correct %d/3" !correct;
    ];
  Table.print t;
  Common.note "k = 24 was rejected by the pre-CSR guard (k > 20); the frozen";
  Common.note "path walks its 2.7M subsets with O(degree) flips."

let counters_table rng =
  let t =
    Table.create ~title:"csr.* registry vs expected (one frozen k=16 decode)"
      ~columns:[ "invariant"; "expected"; "registry"; "agree" ]
  in
  let p = F.make_params ~beta:1 ~inv_eps_sq:16 32 in
  let inst = F.random_instance rng p in
  (* Closed-form flip count of the subset walk, from the walk itself. *)
  let flips = ref 0 in
  F.iter_combinations_incremental ~n:16 ~k:8
    ~flip:(fun _ -> incr flips)
    ~visit:(fun _ -> ());
  let pb = probe "csr.builds" in
  let pf = probe "csr.cut_full" in
  let pd = probe "csr.cut_delta" in
  let g = inst.F.graph in
  let _ =
    F.decode_enumerate ~graph:g p
      ~query:(fun s -> Cut.value g s)
      inst.F.target ~t:inst.F.gh.Gap_hamming.t
  in
  check t "csr.builds = 1 freeze per decode" ~expected:1 ~registry:(delta pb);
  check t "csr.cut_full = 1 seed evaluation" ~expected:1 ~registry:(delta pf);
  check t "csr.cut_delta = subset-walk flips" ~expected:!flips
    ~registry:(delta pd);
  Table.print t;
  if not !all_agree then
    failwith "E19: csr registry disagrees with closed-form expectations"

let karger_table rng =
  let t =
    Table.create
      ~title:"Karger repetition sweep: CSR cut values vs hashtable recomputation"
      ~columns:[ "n"; "edges"; "runs"; "distinct cuts"; "values" ]
  in
  let g0 = Generators.erdos_renyi_connected rng ~n:96 ~p:0.08 in
  let g = Generators.random_multigraph_weights rng g0 ~max_weight:8 in
  let trials = 64 in
  let cuts = Karger.candidate_cuts rng ~trials ~factor:4.0 g in
  (* Byte-identity: integer weights make both summation orders exact, so
     the CSR-evaluated repetition values equal hashtable recomputations
     bit for bit. *)
  let agree =
    List.for_all (fun (v, c) -> v = Ugraph.cut_value g c) cuts
  in
  if not agree then
    failwith "E19: Karger cut values diverge between representations";
  (* Re-evaluation sweep, timed on both paths (stderr only). *)
  let reps = 400 in
  let csr = Csr.of_ugraph g in
  let (), ref_s =
    time (fun () ->
        for _ = 1 to reps do
          List.iter (fun (_, c) -> ignore (Ugraph.cut_value g c)) cuts
        done)
  in
  let (), csr_s =
    time (fun () ->
        for _ = 1 to reps do
          List.iter (fun (_, c) -> ignore (Csr.cut_value csr c)) cuts
        done)
  in
  Printf.eprintf
    "  [E19 karger eval sweep (%d cuts x %d): hashtable %.3fs, csr %.3fs, %.1fx]\n%!"
    (List.length cuts) reps ref_s csr_s (speedup ~ref_s ~csr_s);
  Table.add_row t
    [
      Table.fint (Ugraph.n g);
      Table.fint (Ugraph.m g);
      Table.fint trials;
      Table.fint (List.length cuts);
      "byte-identical";
    ];
  Table.print t;
  Common.note "every repetition's value equals a from-scratch hashtable";
  Common.note "recomputation exactly (integer weights)."

let run () =
  Common.section "E19 Representation: frozen CSR vs hashtable adjacency";
  let rng = Common.rng_for 19 in
  battery_table rng;
  print_newline ();
  enumerate_table rng;
  print_newline ();
  counters_table rng;
  print_newline ();
  karger_table rng

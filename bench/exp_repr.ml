(* E19 — Representation: frozen CSR arrays vs hashtable adjacency on the
   cut-evaluation hot paths, scheduled as DAG stages.

   Three claims are checked, all with the old path still executed as the
   reference:

   (a) The Lemma 4.4 enumerate decoder over the E4 battery grid and on a
   4-chain instance: the CSR walk (one frozen build, one seed cut, then
   [Csr.cut_delta] per membership flip) must return the SAME decision as
   the per-subset full-query path on every instance. Aggregate speedups
   are enforced (>= 2x on the battery, >= 5x on the enumerate instance)
   but their wall-clock values go to stderr only: stdout carries counts
   and agreement flags, and stays byte-identical across DCS_DOMAINS.

   (b) k = 24: the CSR path decodes C(24,12) ≈ 2.7M subsets in seconds —
   the configuration the old [k > 20] guard rejected outright.

   (c) A Karger repetition sweep: every repetition's CSR-evaluated cut
   value must equal a from-scratch hashtable recomputation exactly
   (integer weights), and the csr.* registry counters must agree with
   closed-form expectations, E18-style.

   Every stage here is [Serial]: they measure wall clock (the floors) or
   probe global csr.* registry deltas, so they must run alone in the
   scheduling domain, after the level's pooled stages have joined. The
   instance families come from the shared [Pipelines] stages (the battery
   grid is E4's and E20's), so a merged DAG generates them once. [plan
   ~floors:false] declares the same stages minus the wall-clock floors
   (E23 uses it: cache behavior must not depend on timing luck). *)

open Dcs
module F = Forall_lb
module M = Obs.Metrics
module P = Pipelines

type probe = { counter : M.counter; before : int }

let probe name =
  let c = M.counter name in
  { counter = c; before = M.counter_value c }

let delta p = M.counter_value p.counter - p.before

let all_agree = ref true

let check t invariant ~expected ~registry =
  let ok = expected = registry in
  if not ok then all_agree := false;
  Table.add_row t
    [ invariant; Table.fint expected; Table.fint registry; Table.fbool ok ]

let binom n k =
  let k = min k (n - k) in
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let speedup ~ref_s ~csr_s = ref_s /. Float.max csr_s 1e-9

(* Decode every pre-generated instance through both paths; returns
   (decisions agree, ref seconds, csr seconds). The reference path queries
   the instance graph's hashtables directly (the pre-CSR behavior); the CSR
   path freezes the same graph per decode. *)
let decode_both p insts =
  let n = Array.length insts in
  let decode i ~frozen =
    let inst = insts.(i) in
    let g = inst.F.graph in
    let graph = if frozen then Some g else None in
    F.decode_enumerate ?graph p
      ~query:(fun s -> Cut.value g s)
      inst.F.target ~t:inst.F.gh.Gap_hamming.t
  in
  let ref_dec = Array.make n F.Delta_high in
  let csr_dec = Array.make n F.Delta_high in
  let (), ref_s =
    time (fun () ->
        for i = 0 to n - 1 do
          ref_dec.(i) <- decode i ~frozen:false
        done)
  in
  let (), csr_s =
    time (fun () ->
        for i = 0 to n - 1 do
          csr_dec.(i) <- decode i ~frozen:true
        done)
  in
  (ref_dec = csr_dec, ref_s, csr_s)

(* (a) the battery: both decode paths over the shared instance grid;
   artifact = one row of counts per configuration. *)
let battery_stage pl ~floors =
  let insts_nodes =
    List.map
      (fun (beta, d) ->
        ( (beta, d),
          P.forall_instances pl ~beta ~d ~n:(2 * beta * d)
            ~trials:P.battery_trials ))
      P.battery
  in
  Sched.stage (P.dag pl) ~name:"repr.battery" ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:(List.map (fun (_, nd) -> Sched.dep nd) insts_nodes)
    (fun () ->
      let total_ref = ref 0.0 and total_csr = ref 0.0 in
      let rows =
        List.map
          (fun ((beta, d), nd) ->
            let n = 2 * beta * d in
            let p = F.make_params ~beta ~inv_eps_sq:d n in
            let k = F.block_size p in
            let insts = P.value pl nd in
            let agree, ref_s, csr_s = decode_both p insts in
            if not agree then
              failwith "E19: decode decisions diverge between representations";
            total_ref := !total_ref +. ref_s;
            total_csr := !total_csr +. csr_s;
            Printf.eprintf
              "  [E19 battery beta=%d 1/eps^2=%d: ref %.3fs, csr %.3fs, %.1fx]\n%!"
              beta d ref_s csr_s (speedup ~ref_s ~csr_s);
            (beta, d, n, k, Array.length insts))
          insts_nodes
      in
      let s = speedup ~ref_s:!total_ref ~csr_s:!total_csr in
      Printf.eprintf
        "  [E19 battery total: ref %.3fs, csr %.3fs, speedup %.1fx]\n%!"
        !total_ref !total_csr s;
      if floors && s < 2.0 then
        failwith (Printf.sprintf "E19: decode battery speedup %.2fx < 2x" s);
      rows)

(* (b) enumerate: k = 16 on both paths with a >= 5x floor, k = 24 CSR-only.
   Artifact: the k = 24 correctness count. *)
let enumerate_stage pl ~floors =
  let insts16 = P.forall_instances pl ~beta:1 ~d:16 ~n:64 ~trials:8 in
  let insts24 = P.forall_instances pl ~beta:2 ~d:12 ~n:48 ~trials:3 in
  Sched.stage (P.dag pl) ~name:"repr.enumerate" ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep insts16; Sched.dep insts24 ]
    (fun () ->
      let p16 = F.make_params ~beta:1 ~inv_eps_sq:16 64 in
      let agree, ref_s, csr_s = decode_both p16 (P.value pl insts16) in
      if not agree then
        failwith "E19: enumerate decisions diverge between representations";
      let s = speedup ~ref_s ~csr_s in
      Printf.eprintf
        "  [E19 enumerate k=16: ref %.3fs, csr %.3fs, speedup %.1fx]\n%!" ref_s
        csr_s s;
      if floors && s < 5.0 then
        failwith (Printf.sprintf "E19: enumerate decoder speedup %.2fx < 5x" s);
      let p24 = F.make_params ~beta:2 ~inv_eps_sq:12 48 in
      let correct = ref 0 in
      let (), csr24_s =
        time (fun () ->
            Array.iter
              (fun inst ->
                let g = inst.F.graph in
                let d =
                  F.decode_enumerate ~graph:g p24
                    ~query:(fun s -> Cut.value g s)
                    inst.F.target ~t:inst.F.gh.Gap_hamming.t
                in
                if d = F.correct_decision inst then incr correct)
              (P.value pl insts24))
      in
      Printf.eprintf "  [E19 enumerate k=24: csr %.3fs for 3 decodes]\n%!"
        csr24_s;
      !correct)

(* (c1) registry: csr.* deltas around one frozen k=16 decode, measured
   inside the stage (serial, so nothing else is bumping the counters) and
   shipped in the artifact. *)
let counters_stage pl =
  let insts = P.forall_instances pl ~beta:1 ~d:16 ~n:32 ~trials:1 in
  Sched.stage (P.dag pl) ~name:"repr.counters" ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep insts ]
    (fun () ->
      let p = F.make_params ~beta:1 ~inv_eps_sq:16 32 in
      let inst = (P.value pl insts).(0) in
      (* Closed-form flip count of the subset walk, from the walk itself. *)
      let flips = ref 0 in
      F.iter_combinations_incremental ~n:16 ~k:8
        ~flip:(fun _ -> incr flips)
        ~visit:(fun _ -> ());
      let pb = probe "csr.builds" in
      let pf = probe "csr.cut_full" in
      let pd = probe "csr.cut_delta" in
      let g = inst.F.graph in
      let _ =
        F.decode_enumerate ~graph:g p
          ~query:(fun s -> Cut.value g s)
          inst.F.target ~t:inst.F.gh.Gap_hamming.t
      in
      (!flips, delta pb, delta pf, delta pd))

(* (c2) Karger sweep over the shared weighted graph. Artifact: the sweep
   counts; agreement is enforced in the stage. *)
let karger_stage pl =
  let graph = P.weighted_graph pl ~tag:"repr.karger" ~n:96 ~p:0.08 ~max_weight:8 in
  let name = "repr.karger" in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name) ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep graph ]
    (fun () ->
      let g = P.value pl graph in
      let rng = P.seed_rng name in
      let trials = 64 in
      let cuts = Karger.candidate_cuts rng ~trials ~factor:4.0 g in
      (* Byte-identity: integer weights make both summation orders exact, so
         the CSR-evaluated repetition values equal hashtable recomputations
         bit for bit. *)
      if not (List.for_all (fun (v, c) -> v = Ugraph.cut_value g c) cuts) then
        failwith "E19: Karger cut values diverge between representations";
      (* Re-evaluation sweep, timed on both paths (stderr only). *)
      let reps = 400 in
      let csr = Csr.of_ugraph g in
      let (), ref_s =
        time (fun () ->
            for _ = 1 to reps do
              List.iter (fun (_, c) -> ignore (Ugraph.cut_value g c)) cuts
            done)
      in
      let (), csr_s =
        time (fun () ->
            for _ = 1 to reps do
              List.iter (fun (_, c) -> ignore (Csr.cut_value csr c)) cuts
            done)
      in
      Printf.eprintf
        "  [E19 karger eval sweep (%d cuts x %d): hashtable %.3fs, csr %.3fs, \
         %.1fx]\n\
         %!"
        (List.length cuts) reps ref_s csr_s (speedup ~ref_s ~csr_s);
      (Ugraph.n g, Ugraph.m g, trials, List.length cuts))

let plan ~floors pl =
  let battery = battery_stage pl ~floors in
  let enumerate = enumerate_stage pl ~floors in
  let counters = counters_stage pl in
  let karger = karger_stage pl in
  fun () ->
    Common.section "E19 Representation: frozen CSR vs hashtable adjacency";
    let t =
      Table.create
        ~title:
          "E4 decode battery, Lemma 4.4 enumerate: per-subset queries vs \
           frozen CSR"
        ~columns:
          [ "beta"; "1/eps^2"; "n"; "k"; "decodes"; "subsets/decode"; "decisions" ]
    in
    List.iter
      (fun (beta, d, n, k, trials) ->
        Table.add_row t
          [
            Table.fint beta; Table.fint d; Table.fint n; Table.fint k;
            Table.fint trials;
            Table.fint (binom k (k / 2));
            "identical";
          ])
      (P.value pl battery);
    Table.print t;
    Common.note
      "decisions identical on every instance; aggregate speedup >= 2x enforced";
    Common.note
      "(wall-clock figures on stderr, excluded from the determinism diff).";
    print_newline ();
    let t =
      Table.create
        ~title:"enumerate decoder: 4-chain k=16 (both paths) and k=24 (CSR only)"
        ~columns:
          [ "beta"; "1/eps^2"; "n"; "k"; "decodes"; "subsets/decode"; "result" ]
    in
    Table.add_row t
      [ "1"; "16"; "64"; "16"; "8"; Table.fint (binom 16 8); "decisions identical" ];
    Table.add_row t
      [
        "2"; "12"; "48"; "24"; "3";
        Table.fint (binom 24 12);
        Printf.sprintf "csr only, correct %d/3" (P.value pl enumerate);
      ];
    Table.print t;
    Common.note "k = 24 was rejected by the pre-CSR guard (k > 20); the frozen";
    Common.note "path walks its 2.7M subsets with O(degree) flips.";
    print_newline ();
    let t =
      Table.create ~title:"csr.* registry vs expected (one frozen k=16 decode)"
        ~columns:[ "invariant"; "expected"; "registry"; "agree" ]
    in
    let flips, d_builds, d_full, d_delta = P.value pl counters in
    check t "csr.builds = 1 freeze per decode" ~expected:1 ~registry:d_builds;
    check t "csr.cut_full = 1 seed evaluation" ~expected:1 ~registry:d_full;
    check t "csr.cut_delta = subset-walk flips" ~expected:flips
      ~registry:d_delta;
    Table.print t;
    if not !all_agree then
      failwith "E19: csr registry disagrees with closed-form expectations";
    print_newline ();
    let t =
      Table.create
        ~title:"Karger repetition sweep: CSR cut values vs hashtable recomputation"
        ~columns:[ "n"; "edges"; "runs"; "distinct cuts"; "values" ]
    in
    let n, m, trials, distinct = P.value pl karger in
    Table.add_row t
      [
        Table.fint n; Table.fint m; Table.fint trials; Table.fint distinct;
        "byte-identical";
      ];
    Table.print t;
    Common.note "every repetition's value equals a from-scratch hashtable";
    Common.note "recomputation exactly (integer weights)."

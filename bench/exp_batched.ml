(* E20 — Batched kernels + chunked pool: make multicore actually pay.

   BENCH_005's E10 measured the old per-task fan-out *losing* throughput
   as domains grew (0.43x at 2 domains, 0.14x at 4, single core): every
   task paid spawn/sync overhead and allocated its working set, and every
   minor collection is a stop-the-world rendezvous of all domains. This
   experiment drives the replacement — [Pool.run_batched] chunk scheduling
   with per-domain scratch arenas feeding the dense [Csr.cut_many] /
   [Csr.flip_sweep] kernels — through the E4/E19 decode battery and a
   Karger repetition sweep at explicit domain counts 1/2/4, and enforces:

   - decisions and cut values byte-identical across domain counts (the
     arrays are compared, not sampled — stdout carries the identity flags
     and stays byte-identical across DCS_DOMAINS for the determinism
     gate);
   - wall-clock floors at 4 domains vs 1: >= 3x on a host with >= 4
     cores; on smaller hosts (this container pins 1 core) a >= 0.5x
     anti-regression floor — the old pool's 0.14x collapse must not come
     back — with the measured figures on stderr;
   - the registry counters (the pool and csr families) agreeing with
     closed-form expectations, E18-style;
   - the lifted enumerate guard: a k = 28 decode (the old ceiling was 26)
     completes through the block-buffered flip_sweep decoder. *)

open Dcs
module F = Forall_lb
module M = Obs.Metrics

type probe = { counter : M.counter; before : int }

let probe name =
  let c = M.counter name in
  { counter = c; before = M.counter_value c }

let delta p = M.counter_value p.counter - p.before

let all_agree = ref true

let check t invariant ~expected ~registry =
  let ok = expected = registry in
  if not ok then all_agree := false;
  Table.add_row t
    [ invariant; Table.fint expected; Table.fint registry; Table.fbool ok ]

let binom n k =
  let k = min k (n - k) in
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let domain_grid = [ 1; 2; 4 ]
let cores = Domain.recommended_domain_count ()

(* The wall-clock contract. Figures go to stderr; only pass/fail shape
   reaches stdout. *)
let enforce_floor name ~s1 ~s4 =
  let sp = s1 /. Float.max s4 1e-9 in
  Printf.eprintf "  [E20 %s: d=1 %.3fs, d=4 %.3fs, speedup %.2fx, %d cores]\n%!"
    name s1 s4 sp cores;
  if cores >= 4 then begin
    if sp < 3.0 then
      failwith
        (Printf.sprintf "E20: %s speedup %.2fx < 3x at 4 domains (%d cores)"
           name sp cores)
  end
  else if sp < 0.5 then
    failwith
      (Printf.sprintf
         "E20: %s speedup %.2fx < 0.5x at 4 domains — chunked-pool \
          anti-regression floor (%d cores)"
         name sp cores)

let floor_note () =
  Common.note "floors: >= 3x (d=4 vs d=1) on hosts with >= 4 cores; >= 0.5x";
  Common.note "anti-regression otherwise (the old pool measured 0.14x).";
  Common.note "(wall-clock figures on stderr, excluded from the determinism diff)."

let instances rng p ~trials =
  let master = Prng.fork rng in
  Array.init trials (fun i -> F.random_instance (Prng.split master i) p)

(* One decode battery at an explicit domain count: the instances' graphs
   are frozen once (shared read-only across domains), each worker domain
   holds one decode scratch, and task [i] decodes instance [i]. *)
let decode_battery ~domains p insts csrs =
  Pool.run_batched ~domains
    ~arena:(fun () -> F.decode_scratch p)
    ~n:(Array.length insts)
    (fun scratch i ->
      F.decode_enumerate_frozen ~scratch p csrs.(i) insts.(i).F.target
        ~t:insts.(i).F.gh.Gap_hamming.t)

let battery_tables rng =
  let t =
    Table.create
      ~title:
        "E4/E19 decode battery through run_batched: decisions across domains"
      ~columns:
        [ "beta"; "1/eps^2"; "n"; "k"; "decodes"; "subsets/decode"; "d=1/2/4" ]
  in
  (* Decision-identity coverage on the small E4 grid... *)
  let grid_cfgs = [ (1, 8, 24); (2, 8, 24); (1, 16, 12) ] in
  (* ...and the timed battery on k = 20, big enough that scheduling and
     allocation behavior — not timer noise — dominates. *)
  let timed_cfg = (1, 20, 24) in
  let pb = probe "pool.batched_calls" in
  let pt = probe "pool.tasks" in
  let timed = ref [] in
  List.iter
    (fun (beta, d, trials) ->
      let n = 2 * beta * d in
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let k = F.block_size p in
      let insts = instances rng p ~trials in
      let csrs = Array.map (fun i -> Csr.of_digraph i.F.graph) insts in
      let by_domains =
        List.map
          (fun dom ->
            let dec, s = time (fun () -> decode_battery ~domains:dom p insts csrs) in
            timed := (k, dom, s) :: !timed;
            dec)
          domain_grid
      in
      let identical =
        match by_domains with
        | ref_dec :: rest -> List.for_all (fun dec -> dec = ref_dec) rest
        | [] -> assert false
      in
      if not identical then
        failwith "E20: decode decisions diverge across domain counts";
      Table.add_row t
        [
          Table.fint beta; Table.fint d; Table.fint n; Table.fint k;
          Table.fint trials;
          Table.fint (binom k (k / 2));
          "identical";
        ])
    (grid_cfgs @ [ timed_cfg ]);
  Table.print t;
  (* Floors on the k = 20 battery only (the grid rows are sub-millisecond). *)
  let timed_k = (fun (beta, d, _) -> beta * d) timed_cfg in
  let sec dom =
    List.assoc dom
      (List.filter_map
         (fun (k, d, s) -> if k = timed_k then Some (d, s) else None)
         !timed)
  in
  enforce_floor (Printf.sprintf "decode battery k=%d" timed_k) ~s1:(sec 1)
    ~s4:(sec 4);
  floor_note ();
  (* Registry cross-check: 4 configs x 3 domain counts. *)
  let ct =
    Table.create ~title:"pool.* registry vs expected (12 battery runs)"
      ~columns:[ "invariant"; "expected"; "registry"; "agree" ]
  in
  let batteries = 4 * List.length domain_grid in
  let tasks =
    List.fold_left (fun acc (_, _, tr) -> acc + (tr * List.length domain_grid))
      0
      (grid_cfgs @ [ timed_cfg ])
  in
  check ct "pool.batched_calls = one per battery" ~expected:batteries
    ~registry:(delta pb);
  check ct "pool.tasks = decodes x domain counts" ~expected:tasks
    ~registry:(delta pt);
  Table.print ct;
  if not !all_agree then
    failwith "E20: pool registry disagrees with closed-form expectations"

let guard_table rng =
  let t =
    Table.create
      ~title:"enumerate guard lifted: k = 28 (old ceiling 26) via flip_sweep"
      ~columns:[ "beta"; "1/eps^2"; "n"; "k"; "subsets"; "result" ]
  in
  let p = F.make_params ~beta:1 ~inv_eps_sq:28 56 in
  let k = F.block_size p in
  let inst = F.random_instance rng p in
  let csr = Csr.of_digraph inst.F.graph in
  let pd = probe "csr.cut_delta" in
  let pf = probe "csr.flip_sweep_calls" in
  let dec, s =
    time (fun () ->
        F.decode_enumerate_frozen p csr inst.F.target ~t:inst.F.gh.Gap_hamming.t)
  in
  Printf.eprintf "  [E20 enumerate k=28: %.3fs, %d flip_sweep calls]\n%!" s
    (delta pf);
  (* Every membership toggle of the walk went through the batched kernel. *)
  let flips = ref 0 in
  F.iter_combinations_incremental ~n:k ~k:(k / 2)
    ~flip:(fun _ -> incr flips)
    ~visit:(fun _ -> ());
  if delta pd <> !flips then
    failwith "E20: flip_sweep cut_delta count diverges from the subset walk";
  Table.add_row t
    [
      "1"; "28"; "56"; Table.fint k;
      Table.fint (binom k (k / 2));
      Printf.sprintf "decoded (%s), deltas = walk flips"
        (if dec = F.correct_decision inst then "correct" else "incorrect");
    ];
  Table.print t;
  Common.note "k in (26, 28] was rejected before this PR; the block-buffered";
  Common.note "decoder records toggles and flushes them through flip_sweep."

let karger_table rng =
  let t =
    Table.create
      ~title:"Karger repetition sweep through run_batched: scratch arenas"
      ~columns:[ "n"; "edges"; "trials"; "value"; "d=1/2/4" ]
  in
  let g0 = Generators.erdos_renyi_connected rng ~n:200 ~p:0.05 in
  let g = Generators.random_multigraph_weights rng g0 ~max_weight:8 in
  let trials = 600 in
  let seed_rng = Prng.fork rng in
  let runs =
    List.map
      (fun dom ->
        let r, s =
          time (fun () -> Karger.mincut ~domains:dom (Prng.copy seed_rng) ~trials g)
        in
        (dom, r, s))
      domain_grid
  in
  let (_, (v1, c1), s1) = List.hd runs in
  List.iter
    (fun (dom, (v, c), _) ->
      if not (v = v1 && Cut.equal c c1) then
        failwith
          (Printf.sprintf "E20: Karger result diverges at %d domains" dom))
    runs;
  let s4 =
    match List.find_opt (fun (d, _, _) -> d = 4) runs with
    | Some (_, _, s) -> s
    | None -> assert false
  in
  enforce_floor "karger sweep n=200" ~s1 ~s4;
  Table.add_row t
    [
      Table.fint (Ugraph.n g);
      Table.fint (Ugraph.m g);
      Table.fint trials;
      Printf.sprintf "%g" v1;
      "identical";
    ];
  Table.print t;
  Common.note "per-domain scratch: edge clocks, sort permutation, union-find";
  Common.note "arrays — a contraction run allocates only its result cut."

let run () =
  Common.section "E20 Batched kernels + chunked pool: multicore throughput";
  let rng = Common.rng_for 20 in
  battery_tables rng;
  print_newline ();
  guard_table rng;
  print_newline ();
  karger_table rng

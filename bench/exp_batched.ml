(* E20 — Batched kernels + chunked pool, scheduled as DAG stages.

   BENCH_005's E10 measured the old per-task fan-out *losing* throughput
   as domains grew (0.43x at 2 domains, 0.14x at 4, single core): every
   task paid spawn/sync overhead and allocated its working set, and every
   minor collection is a stop-the-world rendezvous of all domains. This
   experiment drives the replacement — [Pool.run_batched] chunk scheduling
   with per-domain scratch arenas feeding the dense [Csr.cut_many] /
   [Csr.flip_sweep] kernels — through the E4/E19 decode battery and a
   Karger repetition sweep at explicit domain counts 1/2/4, and enforces:

   - decisions and cut values byte-identical across domain counts (the
     arrays are compared, not sampled);
   - wall-clock floors at 4 domains vs 1: >= 3x on a host with >= 4
     cores; on smaller hosts a >= 0.5x anti-regression floor — the old
     pool's 0.14x collapse must not come back — with figures on stderr;
   - the registry counters (pool and csr families) agreeing with
     closed-form expectations, E18-style;
   - the lifted enumerate guard: a k = 28 decode (the old ceiling was 26)
     completes through the block-buffered flip_sweep decoder.

   All three stages are [Serial]: they spawn their own explicit-domain
   [Pool.run_batched] fan-outs, measure wall clock, and probe global
   pool.*/csr.* registry deltas, so they must run alone in the scheduling
   domain after the level's pooled stages have joined. The registry deltas
   are measured inside the stage and shipped in its artifact, so a warm
   rerun prints the identical check table. The instance and freeze stages
   come from [Pipelines] and are shared with E4/E19 on the battery grid
   (the (1,16) grid row runs at the shared 24 trials for that reason).
   [plan ~floors:false] declares the same stages minus the wall-clock
   floors (E23 uses it: cache behavior must not depend on timing luck). *)

open Dcs
module F = Forall_lb
module P = Pipelines

let all_agree = ref true

let check t invariant ~expected ~registry =
  let ok = expected = registry in
  if not ok then all_agree := false;
  Table.add_row t
    [ invariant; Table.fint expected; Table.fint registry; Table.fbool ok ]

let binom n k =
  let k = min k (n - k) in
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let domain_grid = [ 1; 2; 4 ]
let cores = Domain.recommended_domain_count ()

(* The wall-clock contract. Figures go to stderr; only pass/fail shape
   reaches stdout. *)
let enforce_floor name ~s1 ~s4 =
  let sp = s1 /. Float.max s4 1e-9 in
  Printf.eprintf "  [E20 %s: d=1 %.3fs, d=4 %.3fs, speedup %.2fx, %d cores]\n%!"
    name s1 s4 sp cores;
  if cores >= 4 then begin
    if sp < 3.0 then
      failwith
        (Printf.sprintf "E20: %s speedup %.2fx < 3x at 4 domains (%d cores)"
           name sp cores)
  end
  else if sp < 0.5 then
    failwith
      (Printf.sprintf
         "E20: %s speedup %.2fx < 0.5x at 4 domains — chunked-pool \
          anti-regression floor (%d cores)"
         name sp cores)

let floor_note () =
  Common.note "floors: >= 3x (d=4 vs d=1) on hosts with >= 4 cores; >= 0.5x";
  Common.note "anti-regression otherwise (the old pool measured 0.14x).";
  Common.note
    "(wall-clock figures on stderr, excluded from the determinism diff)."

(* Decision-identity coverage on the battery grid (shared with E4/E19)... *)
let grid_cfgs =
  [ (1, 8, P.battery_trials); (2, 8, P.battery_trials); (1, 16, P.battery_trials) ]

(* ...and the timed battery on k = 20, big enough that scheduling and
   allocation behavior — not timer noise — dominates. *)
let timed_cfg = (1, 20, 24)

(* One decode battery at an explicit domain count: the instances' graphs
   are frozen once (shared read-only across domains), each worker domain
   holds one decode scratch, and task [i] decodes instance [i]. *)
let decode_battery ~domains p insts csrs =
  Pool.run_batched ~domains
    ~arena:(fun () -> F.decode_scratch p)
    ~n:(Array.length insts)
    (fun scratch i ->
      F.decode_enumerate_frozen ~scratch p csrs.(i) insts.(i).F.target
        ~t:insts.(i).F.gh.Gap_hamming.t)

(* Artifact: (pool.batched_calls delta, pool.tasks delta, expected
   batteries, expected tasks, rows) — the deltas are measured inside the
   stage so warm reruns print the identical registry table. *)
let battery_stage pl ~floors =
  let cfgs = grid_cfgs @ [ timed_cfg ] in
  let nodes =
    List.map
      (fun (beta, d, trials) ->
        let n = 2 * beta * d in
        ( (beta, d, trials),
          P.forall_instances pl ~beta ~d ~n ~trials,
          P.forall_csrs pl ~beta ~d ~n ~trials ))
      cfgs
  in
  let deps =
    List.concat_map (fun (_, i, c) -> [ Sched.dep i; Sched.dep c ]) nodes
  in
  Sched.stage (P.dag pl) ~name:"batched.battery" ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ()) ~deps
    (fun () ->
      let pb = Common.probe "pool.batched_calls" in
      let pt = Common.probe "pool.tasks" in
      let timed = ref [] in
      let rows =
        List.map
          (fun ((beta, d, trials), insts_nd, csrs_nd) ->
            let n = 2 * beta * d in
            let p = F.make_params ~beta ~inv_eps_sq:d n in
            let k = F.block_size p in
            let insts = P.value pl insts_nd in
            let csrs = P.value pl csrs_nd in
            let by_domains =
              List.map
                (fun dom ->
                  let dec, s =
                    time (fun () -> decode_battery ~domains:dom p insts csrs)
                  in
                  timed := (k, dom, s) :: !timed;
                  dec)
                domain_grid
            in
            let identical =
              match by_domains with
              | ref_dec :: rest -> List.for_all (fun dec -> dec = ref_dec) rest
              | [] -> assert false
            in
            if not identical then
              failwith "E20: decode decisions diverge across domain counts";
            (beta, d, n, k, trials))
          nodes
      in
      (* Floors on the k = 20 battery only (the grid rows are
         sub-millisecond). *)
      let timed_k = (fun (beta, d, _) -> beta * d) timed_cfg in
      let sec dom =
        List.assoc dom
          (List.filter_map
             (fun (k, d, s) -> if k = timed_k then Some (d, s) else None)
             !timed)
      in
      if floors then
        enforce_floor
          (Printf.sprintf "decode battery k=%d" timed_k)
          ~s1:(sec 1) ~s4:(sec 4);
      let batteries = List.length cfgs * List.length domain_grid in
      let tasks =
        List.fold_left
          (fun acc (_, _, tr) -> acc + (tr * List.length domain_grid))
          0 cfgs
      in
      (Common.delta pb, Common.delta pt, batteries, tasks, rows))

(* Artifact: (k, decode correct). The flips-vs-registry identity is
   enforced inside the stage. *)
let guard_stage pl =
  let insts = P.forall_instances pl ~beta:1 ~d:28 ~n:56 ~trials:1 in
  let csrs = P.forall_csrs pl ~beta:1 ~d:28 ~n:56 ~trials:1 in
  Sched.stage (P.dag pl) ~name:"batched.guard" ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep insts; Sched.dep csrs ]
    (fun () ->
      let p = F.make_params ~beta:1 ~inv_eps_sq:28 56 in
      let k = F.block_size p in
      let inst = (P.value pl insts).(0) in
      let csr = (P.value pl csrs).(0) in
      let pd = Common.probe "csr.cut_delta" in
      let pf = Common.probe "csr.flip_sweep_calls" in
      let dec, s =
        time (fun () ->
            F.decode_enumerate_frozen p csr inst.F.target
              ~t:inst.F.gh.Gap_hamming.t)
      in
      Printf.eprintf "  [E20 enumerate k=28: %.3fs, %d flip_sweep calls]\n%!" s
        (Common.delta pf);
      (* Every membership toggle of the walk went through the batched
         kernel. *)
      let flips = ref 0 in
      F.iter_combinations_incremental ~n:k ~k:(k / 2)
        ~flip:(fun _ -> incr flips)
        ~visit:(fun _ -> ());
      if Common.delta pd <> !flips then
        failwith "E20: flip_sweep cut_delta count diverges from the subset walk";
      (k, dec = F.correct_decision inst))

(* Artifact: (n, edges, trials, min-cut value). Cross-domain identity and
   the floors are enforced inside the stage. *)
let karger_stage pl ~floors =
  let graph =
    P.weighted_graph pl ~tag:"batched.karger" ~n:200 ~p:0.05 ~max_weight:8
  in
  let name = "batched.karger" in
  Sched.stage (P.dag pl) ~name ~fingerprint:(P.fp_of name) ~mode:Sched.Serial
    ~codec:(Sched.marshal_codec ())
    ~deps:[ Sched.dep graph ]
    (fun () ->
      let g = P.value pl graph in
      let seed = P.seed_rng name in
      let trials = 600 in
      let runs =
        List.map
          (fun dom ->
            let r, s =
              time (fun () ->
                  Karger.mincut ~domains:dom (Prng.copy seed) ~trials g)
            in
            (dom, r, s))
          domain_grid
      in
      let _, (v1, c1), s1 = List.hd runs in
      List.iter
        (fun (dom, (v, c), _) ->
          if not (v = v1 && Cut.equal c c1) then
            failwith
              (Printf.sprintf "E20: Karger result diverges at %d domains" dom))
        runs;
      let s4 =
        match List.find_opt (fun (d, _, _) -> d = 4) runs with
        | Some (_, _, s) -> s
        | None -> assert false
      in
      if floors then enforce_floor "karger sweep n=200" ~s1 ~s4;
      (Ugraph.n g, Ugraph.m g, trials, v1))

let plan ~floors pl =
  let battery = battery_stage pl ~floors in
  let guard = guard_stage pl in
  let karger = karger_stage pl ~floors in
  fun () ->
    Common.section "E20 Batched kernels + chunked pool: multicore throughput";
    let d_pb, d_pt, batteries, tasks, rows = P.value pl battery in
    let t =
      Table.create
        ~title:
          "E4/E19 decode battery through run_batched: decisions across domains"
        ~columns:
          [ "beta"; "1/eps^2"; "n"; "k"; "decodes"; "subsets/decode"; "d=1/2/4" ]
    in
    List.iter
      (fun (beta, d, n, k, trials) ->
        Table.add_row t
          [
            Table.fint beta; Table.fint d; Table.fint n; Table.fint k;
            Table.fint trials;
            Table.fint (binom k (k / 2));
            "identical";
          ])
      rows;
    Table.print t;
    floor_note ();
    (* Registry cross-check: 4 configs x 3 domain counts, measured inside
       the stage. *)
    let ct =
      Table.create ~title:"pool.* registry vs expected (12 battery runs)"
        ~columns:[ "invariant"; "expected"; "registry"; "agree" ]
    in
    check ct "pool.batched_calls = one per battery" ~expected:batteries
      ~registry:d_pb;
    check ct "pool.tasks = decodes x domain counts" ~expected:tasks
      ~registry:d_pt;
    Table.print ct;
    if not !all_agree then
      failwith "E20: pool registry disagrees with closed-form expectations";
    print_newline ();
    let t =
      Table.create
        ~title:"enumerate guard lifted: k = 28 (old ceiling 26) via flip_sweep"
        ~columns:[ "beta"; "1/eps^2"; "n"; "k"; "subsets"; "result" ]
    in
    let k, correct = P.value pl guard in
    Table.add_row t
      [
        "1"; "28"; "56"; Table.fint k;
        Table.fint (binom k (k / 2));
        Printf.sprintf "decoded (%s), deltas = walk flips"
          (if correct then "correct" else "incorrect");
      ];
    Table.print t;
    Common.note "k in (26, 28] was rejected before this PR; the block-buffered";
    Common.note "decoder records toggles and flushes them through flip_sweep.";
    print_newline ();
    let t =
      Table.create
        ~title:"Karger repetition sweep through run_batched: scratch arenas"
        ~columns:[ "n"; "edges"; "trials"; "value"; "d=1/2/4" ]
    in
    let n, m, trials, v1 = P.value pl karger in
    Table.add_row t
      [
        Table.fint n;
        Table.fint m;
        Table.fint trials;
        Printf.sprintf "%g" v1;
        "identical";
      ];
    Table.print t;
    Common.note "per-domain scratch: edge clocks, sort permutation, union-find";
    Common.note "arrays — a contraction run allocates only its result cut."

(* E22 — Crash-consistent streaming sketches: the chaos battery.

   Exercises Issue 8's tentpole end to end and *enforces* its contracts
   (a violated floor aborts the whole bench run):

   1. torn-write recovery: a WAL-backed journal is killed at every record
      boundary AND torn at every single byte offset of the log; every
      recovery must reproduce the uninterrupted run's state digest for
      the surviving prefix, with mid-record tears quarantined as [Torn]
      — never applied, never silently dropped;
   2. adversarial records: [Wal.Adversary] drives deterministic
      drop/corrupt/duplicate/reorder sweeps through [Fault] policies;
      replay must keep the books balanced,
      applied + duplicates + stale + |quarantined| = offered,
      cross-checked against the [stream.wal_*] registry counters, and
      the recovered digest must equal the reference digest of the
      contiguously-applied prefix;
   3. streamed = batch: the E3/E4 decode batteries rerun with sketches
      built from a churned insert/delete stream instead of the finished
      graph — success rates and sketch sizes must agree bit for bit;
   4. re-freeze policies: Rebuild vs Delta_buffer thresholds reach
      digest-identical states while the overlay honors its bound;
   5. live serving: a dcutd catalog built entirely from streams, mutated
      mid-flight through [Serve.update_graph] — fingerprint-keyed cache
      invalidation with the zero-silent-drop accounting intact.

   A sixth, env-gated phase (DCS_STREAM_DIR, DCS_STREAM_KILL=N) runs a
   journaled ingest that bin/check_determinism.sh kills after N fresh
   records (exit 3, via Checkpoint.Interrupted) and then resumes in the
   same directory; stdout is byte-identical to an uninterrupted run. *)

open Dcs
module M = Obs.Metrics

type probe = { counter : M.counter; before : int }

let probe name =
  let c = M.counter name in
  { counter = c; before = M.counter_value c }

let delta p = M.counter_value p.counter - p.before
let fail fmt = Printf.ksprintf failwith fmt
let enforce name cond = if not cond then fail "E22: %s violated" name

(* --- scratch directories (paths never reach stdout) --- *)

let scratch_counter = ref 0

let fresh_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dcs_e22_%d_%d" (Unix.getpid ()) !scratch_counter)
  in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- deterministic insert/delete op streams --- *)

(* A shadow weight table keeps deletions legal: every generated op is
   applicable, so replay accounting isolates *transport* damage. *)
type mutation = { op : Wal.op; u : int; v : int; w : float }

let gen_ops rng ~n ~count =
  let shadow = Hashtbl.create 97 in
  let have u v = Option.value ~default:0.0 (Hashtbl.find_opt shadow (u, v)) in
  List.init count (fun _ ->
      let u = Prng.int rng n in
      let v0 = Prng.int rng (n - 1) in
      let v = if v0 >= u then v0 + 1 else v0 in
      let w = float_of_int (1 + Prng.int rng 3) in
      let del = Prng.bernoulli rng 0.35 && have u v >= w in
      let op = if del then Wal.Delete else Wal.Insert in
      Hashtbl.replace shadow (u, v)
        (if del then have u v -. w else have u v +. w);
      { op; u; v; w })

let apply_direct t m =
  match Stream_sketch.apply t ~op:m.op ~u:m.u ~v:m.v ~w:m.w with
  | Ok () -> ()
  | Error e -> fail "E22: generated op rejected (%s)" e

let journal_apply j m =
  let r =
    match m.op with
    | Wal.Insert -> Stream_sketch.journal_insert j ~u:m.u ~v:m.v ~w:m.w
    | Wal.Delete -> Stream_sketch.journal_delete j ~u:m.u ~v:m.v ~w:m.w
  in
  match r with
  | Ok () -> ()
  | Error e -> fail "E22: journaled op rejected (%s)" e

let ok = function Ok x -> x | Error e -> fail "E22: %s" e

(* ------------------------------------------------------------------ *)
(* Phase 1: kill/tear everywhere, recover, compare digests.           *)
(* ------------------------------------------------------------------ *)

let chaos_n = 12
let chaos_seed = 42

(* Run the whole stream through an uninterrupted journal, recording the
   state digest after every op. Closing without a checkpoint is exactly a
   record-boundary kill: the directory keeps the open-time (empty)
   snapshot plus the full log. Returns (digests, snapshot bytes, wal
   bytes). *)
let uninterrupted_journal ops =
  with_dir (fun dir ->
      let j, report = ok (Stream_sketch.open_journal ~dir ~n:chaos_n ~seed:chaos_seed ()) in
      enforce "fresh journal starts empty" (report.Wal.offered = 0);
      let t = Stream_sketch.journal_state j in
      let digests = Array.make (List.length ops + 1) 0L in
      digests.(0) <- Stream_sketch.digest t;
      List.iteri
        (fun i m ->
          journal_apply j m;
          digests.(i + 1) <- Stream_sketch.digest t)
        ops;
      Stream_sketch.close_journal j;
      let snapshot, wal = read_file (Filename.concat dir "snapshot.ckpt"),
                          read_file (Filename.concat dir "wal.log") in
      (digests, snapshot, wal))

(* Byte offsets at which a record boundary falls (0 included). *)
let boundaries wal =
  let scan = Wal.scan_string wal in
  enforce "reference log is clean" (scan.Wal.damaged = []);
  let offs = ref [ 0 ] and pos = ref 0 in
  List.iter
    (fun r ->
      pos := !pos + String.length (Wal.encode r);
      offs := !pos :: !offs)
    scan.Wal.records;
  List.rev !offs

let torn_sweep digests snapshot wal =
  with_dir (fun dir ->
      let snap_path = Filename.concat dir "snapshot.ckpt" in
      let wal_path = Filename.concat dir "wal.log" in
      write_file snap_path snapshot;
      let bounds = Array.of_list (boundaries wal) in
      let complete_at b =
        (* number of whole records within the first b bytes *)
        let c = ref 0 in
        Array.iteri (fun i off -> if i > 0 && off <= b then incr c) bounds;
        !c
      in
      let len = String.length wal in
      let matches = ref 0 and torn = ref 0 and boundary_kills = ref 0 in
      for b = 0 to len do
        write_file wal_path (Wal.Adversary.tear wal ~at:b);
        let r =
          ok
            (Stream_sketch.recover ~n:chaos_n ~seed:chaos_seed
               ~snapshot:snap_path ~wal:wal_path ())
        in
        let c = complete_at b in
        let at_boundary = b = bounds.(c) in
        if at_boundary then incr boundary_kills;
        enforce "tear applies exactly the whole-record prefix"
          (r.Stream_sketch.report.Wal.applied = c);
        (match r.Stream_sketch.report.Wal.quarantined with
        | [] -> enforce "clean tail only at a boundary" at_boundary
        | [ Wal.Damaged (Wal.Torn _) ] ->
            enforce "torn tail only off-boundary" (not at_boundary);
            incr torn
        | q ->
            fail "E22: tear at byte %d quarantined unexpectedly (%s)" b
              (String.concat "; " (List.map Wal.pp_quarantine q)));
        if Stream_sketch.digest r.Stream_sketch.state = digests.(c) then
          incr matches
        else fail "E22: tear at byte %d: digest diverges from prefix %d" b c
      done;
      (len + 1, !matches, !torn, !boundary_kills))

(* Kill-at-every-boundary through the *journal* path: apply the first i
   ops, close (= kill), reopen — the open-time recovery + compaction must
   land on the reference digest. *)
let journal_reopen_sweep digests ops =
  let ops = Array.of_list ops in
  let count = Array.length ops in
  let matches = ref 0 in
  for i = 0 to count do
    with_dir (fun dir ->
        let j, _ = ok (Stream_sketch.open_journal ~dir ~n:chaos_n ~seed:chaos_seed ()) in
        for k = 0 to i - 1 do
          journal_apply j ops.(k)
        done;
        Stream_sketch.close_journal j;
        let j2, report =
          ok (Stream_sketch.open_journal ~dir ~n:chaos_n ~seed:chaos_seed ())
        in
        enforce "reopen replays the whole surviving log"
          (report.Wal.applied = i && report.Wal.quarantined = []);
        let t = Stream_sketch.journal_state j2 in
        enforce "reopen restores the applied sequence"
          (Stream_sketch.applied_seq t = i);
        if Stream_sketch.digest t = digests.(i) then incr matches
        else fail "E22: journal reopen after %d ops: digest diverges" i;
        Stream_sketch.close_journal j2)
  done;
  (count + 1, !matches)

let recovery_battery () =
  let ops = gen_ops (Prng.create 2203) ~n:chaos_n ~count:28 in
  let digests, snapshot, wal = uninterrupted_journal ops in
  let positions, matches, torn, boundary_kills = torn_sweep digests snapshot wal in
  let reopens, reopen_matches = journal_reopen_sweep digests ops in
  enforce "every recovery digest-identical" (matches = positions);
  enforce "every reopen digest-identical" (reopen_matches = reopens);
  enforce "boundary + torn positions cover the sweep"
    (boundary_kills + torn = positions);
  let t =
    Table.create ~title:"kill/tear recovery sweep (digest-checked, enforced)"
      ~columns:[ "sweep"; "positions"; "digest matches"; "torn quarantined" ]
  in
  Table.add_row t
    [ "tear at every byte"; Table.fint positions; Table.fint matches;
      Table.fint torn ];
  Table.add_row t
    [ "kill at record boundary"; Table.fint boundary_kills;
      Table.fint boundary_kills; Table.fint 0 ];
  Table.add_row t
    [ "journal close/reopen"; Table.fint reopens; Table.fint reopen_matches;
      Table.fint 0 ];
  Table.print t;
  Common.note
    "every byte offset of the WAL was torn and recovered: whole-record";
  Common.note
    "prefixes replay to the reference digest, partial tails quarantine as";
  Common.note "Torn, and the journal reopen path re-compacts to the same state.";
  digests

(* ------------------------------------------------------------------ *)
(* Phase 2: adversarial record sweep with balanced books.              *)
(* ------------------------------------------------------------------ *)

let adversarial_battery digests ops =
  let records =
    List.mapi
      (fun i (m : mutation) ->
        { Wal.seq = i + 1; op = m.op; u = m.u; v = m.v; w = m.w })
      ops
  in
  let policies =
    [
      ("clean", Fault.no_faults);
      ("drop 10%", Fault.policy ~drop:0.10 ());
      ("corrupt 10%", Fault.policy ~corrupt:0.10 ());
      ("duplicate 15%", Fault.policy ~lie:0.15 ());
      ("reorder 20%", Fault.policy ~timeout:0.20 ());
      ("mixed 5/5/10/10", Fault.policy ~drop:0.05 ~corrupt:0.05 ~lie:0.10 ~timeout:0.10 ());
    ]
  in
  let t =
    Table.create
      ~title:
        "adversarial WAL replay: applied + dup + stale + quarantined = \
         offered (enforced)"
      ~columns:
        [ "policy"; "offered"; "applied"; "dup"; "quar"; "corrupt"; "gaps";
          "torn"; "books" ]
  in
  List.iter
    (fun (name, policy) ->
      let fault = Fault.create policy (Prng.create 2207) in
      let mangled, inj = Wal.Adversary.mangle fault records in
      let p_off = probe "stream.wal_offered"
      and p_app = probe "stream.wal_applied"
      and p_dup = probe "stream.wal_duplicates"
      and p_stale = probe "stream.wal_stale"
      and p_quar = probe "stream.wal_quarantined"
      and p_corrupt = probe "stream.wal_corrupt"
      and p_gaps = probe "stream.wal_gaps"
      and p_torn = probe "stream.wal_torn" in
      let report, state =
        with_dir (fun dir ->
            let wal_path = Filename.concat dir "wal.log" in
            write_file wal_path mangled;
            let r =
              ok
                (Stream_sketch.recover ~n:chaos_n ~seed:chaos_seed
                   ~snapshot:(Filename.concat dir "absent.ckpt")
                   ~wal:wal_path ())
            in
            (r.Stream_sketch.report, r.Stream_sketch.state))
      in
      let quarantined = List.length report.Wal.quarantined in
      let balanced =
        report.Wal.applied + report.Wal.duplicates + report.Wal.stale
        + quarantined
        = report.Wal.offered
      in
      enforce "replay books balance" balanced;
      (* registry cross-check, E18-style *)
      enforce "stream.wal_* counters mirror the report"
        (delta p_off = report.Wal.offered
        && delta p_app = report.Wal.applied
        && delta p_dup = report.Wal.duplicates
        && delta p_stale = report.Wal.stale
        && delta p_quar = quarantined);
      let corrupt_q =
        List.length
          (List.filter
             (function Wal.Damaged (Wal.Corrupt _) -> true | _ -> false)
             report.Wal.quarantined)
      and gap_q =
        List.length
          (List.filter (function Wal.Gap _ -> true | _ -> false)
             report.Wal.quarantined)
      and torn_q =
        List.length
          (List.filter
             (function Wal.Damaged (Wal.Torn _) -> true | _ -> false)
             report.Wal.quarantined)
      in
      enforce "typed quarantine counters mirror the report"
        (delta p_corrupt = corrupt_q && delta p_gaps = gap_q
        && delta p_torn = torn_q);
      (* the adversary's own books *)
      enforce "offered = sent - dropped + duplicated"
        (report.Wal.offered
        = List.length records - inj.Wal.Adversary.dropped
          + inj.Wal.Adversary.duplicated);
      enforce "corruption damages at least each corrupted record"
        (corrupt_q >= min 1 inj.Wal.Adversary.corrupted);
      (* prefix equivalence: the applied records are exactly seqs
         1..last_seq, so the state digest must sit on the reference
         trajectory. *)
      enforce "recovered digest on the reference trajectory"
        (Stream_sketch.digest state = digests.(report.Wal.last_seq));
      (match name with
      | "clean" | "reorder 20%" | "duplicate 15%" ->
          enforce "lossless policies apply everything"
            (report.Wal.applied = List.length records)
      | _ -> ());
      Table.add_row t
        [
          name;
          Table.fint report.Wal.offered;
          Table.fint report.Wal.applied;
          Table.fint report.Wal.duplicates;
          Table.fint quarantined;
          Table.fint corrupt_q;
          Table.fint gap_q;
          Table.fint torn_q;
          (if balanced then "balanced" else "LEAK");
        ])
    policies;
  Table.print t;
  Common.note
    "duplicates and adjacent reorders replay losslessly; a corrupted or";
  Common.note
    "dropped record quarantines itself (typed) and halts ordered replay at";
  Common.note
    "the hole it leaves — everything after it is quarantined as Gap, and the";
  Common.note "recovered state still sits exactly on the reference trajectory.";

  Common.note "";
  Common.note
    "single-bit sensitivity: flipping any one payload bit of a record is";
  let r0 = List.hd records in
  let line = Wal.encode r0 in
  let detected = ref 0 and total = ref 0 in
  String.iteri
    (fun i c ->
      if c <> '\n' then
        for bit = 0 to 7 do
          let flipped = Char.chr (Char.code c lxor (1 lsl bit)) in
          if flipped <> '\n' then begin
            incr total;
            let s = String.mapi (fun j c0 -> if j = i then flipped else c0) line in
            match Wal.decode (String.sub s 0 (String.length s - 1)) with
            | Error _ -> incr detected
            | Ok r -> if r <> r0 then fail "E22: undetected record mutation"
          end
        done)
    line;
  enforce "every single-bit flip detected" (!detected = !total);
  Common.note "detected by CRC/canonical decode: %d/%d flips rejected."
    !detected !total

(* ------------------------------------------------------------------ *)
(* Phase 3: E3/E4 decode batteries, streamed vs batch.                 *)
(* ------------------------------------------------------------------ *)

(* Build the trial sketch from an insert/delete churn over the instance's
   edges instead of the finished graph: edges arrive in reverse, every
   third one split into two half-weight inserts, every fifth shadowed by
   an insert+delete pair that must cancel exactly. *)
let streamed_exact _rng graph =
  let n = Digraph.n graph in
  let t =
    Stream_sketch.create
      ~refreeze:(Stream_sketch.Delta_buffer { compact_threshold = 4096 })
      ~n ~seed:77 ()
  in
  let edges = ref [] in
  Digraph.iter_edges graph (fun u v w -> edges := (u, v, w) :: !edges);
  List.iteri
    (fun i (u, v, w) ->
      if u <> v then begin
        if i mod 3 = 0 then begin
          Stream_sketch.insert t ~u ~v ~w:(w /. 2.);
          Stream_sketch.insert t ~u ~v ~w:(w /. 2.)
        end
        else Stream_sketch.insert t ~u ~v ~w;
        if i mod 5 = 0 then begin
          Stream_sketch.insert t ~u ~v ~w:2.0;
          Stream_sketch.delete t ~u ~v ~w:2.0
        end
      end)
    !edges;
  Stream_sketch.exact_sketch t

let foreach_rerun () =
  let module F = Foreach_lb in
  let t =
    Table.create
      ~title:"E3 decode battery, batch-built vs stream-built sketches (enforced equal)"
      ~columns:[ "beta"; "1/eps"; "n"; "batch"; "streamed"; "sketch kbits" ]
  in
  List.iter
    (fun (beta, inv_eps, n) ->
      let p = F.make_params ~beta ~inv_eps n in
      let run sketch_of =
        F.run_trials (Prng.create (9000 + n + beta)) p ~sketch_of ~trials:3
          ~bits_per_trial:60
      in
      let batch = run (fun _ inst -> Exact_sketch.create inst.F.graph) in
      let streamed = run (fun r inst -> streamed_exact r inst.F.graph) in
      enforce "E3 streamed success rate = batch"
        (batch.F.success_rate = streamed.F.success_rate
        && batch.F.correct = streamed.F.correct);
      enforce "E3 streamed sketch bits = batch"
        (batch.F.mean_sketch_bits = streamed.F.mean_sketch_bits);
      Table.add_row t
        [
          Table.fint beta; Table.fint inv_eps; Table.fint n;
          Printf.sprintf "%.2f" batch.F.success_rate;
          Printf.sprintf "%.2f" streamed.F.success_rate;
          Common.kbits (int_of_float batch.F.mean_sketch_bits);
        ])
    [ (1, 8, 64); (4, 8, 64) ];
  Table.print t

let forall_rerun () =
  let module F = Forall_lb in
  let t =
    Table.create
      ~title:"E4 decode battery, batch-built vs stream-built sketches (enforced equal)"
      ~columns:[ "beta"; "1/eps^2"; "decoder"; "batch"; "streamed" ]
  in
  List.iter
    (fun (beta, d, decoder, dname) ->
      let p = F.make_params ~beta ~inv_eps_sq:d (2 * beta * d) in
      let run sketch_of =
        F.run_trials (Prng.create (9100 + beta + d)) p ~sketch_of ~decoder
          ~trials:30
      in
      let batch = run (fun _ inst -> Exact_sketch.create inst.F.graph) in
      let streamed = run (fun r inst -> streamed_exact r inst.F.graph) in
      enforce "E4 streamed success rate = batch"
        (batch.F.success_rate = streamed.F.success_rate
        && batch.F.correct = streamed.F.correct);
      Table.add_row t
        [
          Table.fint beta; Table.fint d; dname;
          Printf.sprintf "%.2f" batch.F.success_rate;
          Printf.sprintf "%.2f" streamed.F.success_rate;
        ])
    [ (1, 8, `Single, "single"); (1, 8, `Topk, "topk"); (2, 8, `Single, "single") ];
  Table.print t;
  Common.note
    "the streamed side never sees the finished graph: edges arrive reversed,";
  Common.note
    "split, and shadowed by insert+delete churn, yet every decode decision";
  Common.note
    "and sketch size matches the batch build bit for bit (canonical state)."

(* ------------------------------------------------------------------ *)
(* Phase 4: re-freeze policy equivalence.                              *)
(* ------------------------------------------------------------------ *)

let refreeze_battery () =
  let n = 32 in
  let ops = gen_ops (Prng.create 2213) ~n ~count:400 in
  let run policy =
    let p_comp = probe "stream.compactions" in
    let t = Stream_sketch.create ~refreeze:policy ~n ~seed:7 () in
    let max_overlay = ref 0 in
    List.iter
      (fun m ->
        apply_direct t m;
        max_overlay := max !max_overlay (Stream_sketch.delta_pairs t))
      ops;
    (Stream_sketch.digest t, Stream_sketch.fingerprint t,
     Stream_sketch.arcs t, !max_overlay, delta p_comp)
  in
  let policies =
    [
      ("Rebuild", Stream_sketch.Rebuild, 0);
      ("Delta 8", Stream_sketch.Delta_buffer { compact_threshold = 8 }, 8);
      ("Delta 64", Stream_sketch.Delta_buffer { compact_threshold = 64 }, 64);
      ("Delta 256", Stream_sketch.Delta_buffer { compact_threshold = 256 }, 256);
    ]
  in
  let t =
    Table.create
      ~title:"re-freeze policies over 400 mutations (digest-identical, enforced)"
      ~columns:[ "policy"; "compactions"; "max overlay"; "arcs"; "digest" ]
  in
  let reference = ref None in
  List.iter
    (fun (name, policy, threshold) ->
      let digest, fp, arcs, overlay, compactions = run policy in
      (match !reference with
      | None -> reference := Some (digest, fp)
      | Some (d0, f0) ->
          enforce "policy-independent state" (digest = d0 && fp = f0));
      enforce "overlay within threshold" (overlay <= threshold);
      (match policy with
      | Stream_sketch.Rebuild ->
          enforce "Rebuild compacts every mutation" (compactions = 400)
      | Stream_sketch.Delta_buffer _ ->
          enforce "buffering compacts less than Rebuild" (compactions < 400));
      Table.add_row t
        [
          name; Table.fint compactions; Table.fint overlay; Table.fint arcs;
          Printf.sprintf "%016Lx" digest;
        ])
    policies;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Phase 5: live serving under mutation.                               *)
(* ------------------------------------------------------------------ *)

let serving_battery () =
  let keys = 8 and gn = 24 in
  let master = Prng.create 2221 in
  (* every catalog graph is built by streaming a generated digraph's
     edges (with churn) — the stream's frozen CSR must fingerprint
     exactly like the batch build. *)
  let streams =
    Array.init keys (fun i ->
        let r = Prng.split master i in
        let g0 = Generators.random_digraph r ~n:gn ~p:0.35 ~max_weight:4.0 in
        (* quantize weights to eighths: dyadic, so the insert/delete churn
           below cancels exactly in floating point *)
        let g = Digraph.create gn in
        Digraph.iter_edges g0 (fun u v w ->
            let q = Float.round (w *. 8.) /. 8. in
            if q > 0.0 then Digraph.add_edge g u v q);
        let t = Stream_sketch.create ~n:gn ~seed:(100 + i) () in
        let k = ref 0 in
        Digraph.iter_edges g (fun u v w ->
            incr k;
            Stream_sketch.insert t ~u ~v ~w;
            if !k mod 4 = 0 then begin
              Stream_sketch.insert t ~u ~v ~w:2.0;
              Stream_sketch.delete t ~u ~v ~w:2.0
            end);
        enforce "streamed catalog graph = batch fingerprint"
          (Int64.equal (Stream_sketch.fingerprint t)
             (Csr.fingerprint (Csr.of_digraph g)));
        t)
  in
  let graphs = Array.map Stream_sketch.frozen streams in
  let traffic =
    {
      Traffic.default with
      Traffic.keys;
      Traffic.hot_keys = 2;
      Traffic.burst_every = 0;
      Traffic.burst_len = 0;
    }
  in
  let srv =
    Serve.create Serve.default_config ~graphs ~rng:(Prng.create 2237)
  in
  let n_reqs = 4000 in
  let reqs1 = Traffic.generate (Prng.create 2239) traffic ~n:n_reqs in
  let resp1 = Serve.run srv reqs1 in
  let s1 = Serve.stats srv in
  (* Mutate key 0 through the stream and republish; a content-identical
     reinstall of key 1 must NOT invalidate. *)
  List.iter
    (fun m -> apply_direct streams.(0) m)
    (gen_ops (Prng.create 2243) ~n:gn ~count:24);
  Serve.update_graph srv ~key:0 (Stream_sketch.frozen streams.(0));
  graphs.(0) <- Stream_sketch.frozen streams.(0);
  Serve.update_graph srv ~key:1 graphs.(1);
  let base = (Serve.stats srv).Serve.clock + 1 in
  let reqs2 =
    Array.map
      (fun (r : Traffic.request) -> { r with Traffic.arrival = r.arrival + base })
      (Traffic.generate (Prng.create 2251) traffic ~n:n_reqs)
  in
  let resp2 = Serve.run srv reqs2 in
  let s2 = Serve.stats srv in
  enforce "mutation invalidates exactly the changed fingerprint"
    (s2.Serve.cache_invalidations = 1);
  (* zero silent drops across both runs, typed responses re-add *)
  let ans = ref 0 and shed = ref 0 and dl = ref 0 in
  Array.iter
    (function
      | Serve.Answered _ -> incr ans
      | Serve.Rejected (Serve.Overloaded _) -> incr shed
      | Serve.Rejected (Serve.Deadline_exceeded _) -> incr dl)
    (Array.append resp1 resp2);
  enforce "responses mirror server accounting"
    (!ans = s2.Serve.answered && !shed = s2.Serve.shed
    && !dl = s2.Serve.deadline_rejections);
  enforce "zero silent drops under mutation"
    (!ans + !shed + !dl = 2 * n_reqs && s2.Serve.offered = 2 * n_reqs);
  (* post-update answers conform against the *new* graph *)
  let kept = ref 0 and sampled = ref 0 in
  Array.iteri
    (fun i resp ->
      if i mod 37 = 0 then
        match resp with
        | Serve.Answered a ->
            incr sampled;
            let g = graphs.(reqs2.(i).Traffic.key) in
            let exact =
              Csr.cut_value g
                (Cut.random (Prng.create reqs2.(i).Traffic.cut_seed) ~n:(Csr.n g))
            in
            if Float.abs (a.Serve.value -. exact) <= (a.Serve.eps *. exact) +. 1e-9
            then incr kept
        | Serve.Rejected _ -> ())
    resp2;
  enforce "post-update answers conform to the live graph" (!kept = !sampled);
  let t =
    Table.create ~title:"dcutd catalog under live mutation (accounting enforced)"
      ~columns:
        [ "phase"; "offered"; "answered"; "hits"; "misses"; "invalidations" ]
  in
  Table.add_row t
    [
      "before update"; Table.fint s1.Serve.offered; Table.fint s1.Serve.answered;
      Table.fint s1.Serve.cache_hits; Table.fint s1.Serve.cache_misses;
      Table.fint s1.Serve.cache_invalidations;
    ];
  Table.add_row t
    [
      "after update"; Table.fint s2.Serve.offered; Table.fint s2.Serve.answered;
      Table.fint s2.Serve.cache_hits; Table.fint s2.Serve.cache_misses;
      Table.fint s2.Serve.cache_invalidations;
    ];
  Table.print t;
  Common.note
    "post-update conformance: %d/%d sampled answers within advertised eps"
    !kept !sampled;
  Common.note
    "republish of identical content did not invalidate; the one changed";
  Common.note "fingerprint cost exactly one cache entry and one rebuild miss."

(* ------------------------------------------------------------------ *)
(* Phase 6 (env-gated): kill-then-resume journal for the determinism   *)
(* gate. Chatter on stderr; the final table depends only on the final  *)
(* state, so stdout is byte-identical killed+resumed vs uninterrupted. *)
(* ------------------------------------------------------------------ *)

let journal_cycle () =
  match Sys.getenv_opt "DCS_STREAM_DIR" with
  | None -> ()
  | Some dir ->
      let kill =
        match Sys.getenv_opt "DCS_STREAM_KILL" with
        | Some s -> int_of_string s
        | None -> 0
      in
      let total = 60 in
      let ops = gen_ops (Prng.create 2269) ~n:16 ~count:total in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let j, report =
        ok
          (Stream_sketch.open_journal ~checkpoint_every:8 ~dir ~n:16 ~seed:5 ())
      in
      let t = Stream_sketch.journal_state j in
      let start = Stream_sketch.applied_seq t in
      Printf.eprintf
        "  [E22 journal: recovered %d ops from WAL+snapshot (%d replayed, %d quarantined)]\n%!"
        start report.Wal.applied
        (List.length report.Wal.quarantined);
      let fresh = ref 0 in
      List.iteri
        (fun i m ->
          if i >= start then begin
            journal_apply j m;
            incr fresh;
            if kill > 0 && !fresh = kill && start + !fresh < total then begin
              Stream_sketch.close_journal j;
              raise
                (Checkpoint.Interrupted { path = dir; completed_now = kill })
            end
          end)
        ops;
      Stream_sketch.journal_checkpoint j;
      Stream_sketch.close_journal j;
      let tbl =
        Table.create ~title:"journaled ingest (kill/resume-invariant)"
          ~columns:[ "ops"; "arcs"; "applied seq"; "digest" ]
      in
      Table.add_row tbl
        [
          Table.fint total;
          Table.fint (Stream_sketch.arcs t);
          Table.fint (Stream_sketch.applied_seq t);
          Printf.sprintf "%016Lx" (Stream_sketch.digest t);
        ];
      Table.print tbl

let run () =
  Common.section "E22 streaming ingest: WAL recovery + adversarial tolerance";
  let ops = gen_ops (Prng.create 2203) ~n:chaos_n ~count:28 in
  let digests = recovery_battery () in
  print_newline ();
  adversarial_battery digests ops;
  print_newline ();
  foreach_rerun ();
  print_newline ();
  forall_rerun ();
  print_newline ();
  refreeze_battery ();
  print_newline ();
  serving_battery ();
  journal_cycle ()

(* E10 — Bechamel micro-benchmarks for the core algorithms. One Test.make
   per substrate operation; results reported as estimated ns per run via
   OLS on the monotonic clock. *)

open Bechamel
open Toolkit
open Dcs

let make_fixtures () =
  let rng = Prng.create 1234 in
  let ug = Generators.erdos_renyi_connected rng ~n:120 ~p:0.2 in
  let wg = Generators.random_multigraph_weights rng ug ~max_weight:10 in
  let dg = Generators.balanced_digraph rng ~n:80 ~p:0.2 ~beta:2.0 ~max_weight:5.0 in
  let fe_params = Foreach_lb.make_params ~beta:4 ~inv_eps:8 64 in
  let fe_inst = Foreach_lb.random_instance rng fe_params in
  let fe_sketch = Exact_sketch.create fe_inst.Foreach_lb.graph in
  let x = Bitstring.random rng 1024 and y = Bitstring.random rng 1024 in
  (rng, ug, wg, dg, fe_params, fe_inst, fe_sketch, x, y)

let tests () =
  let rng, ug, wg, dg, fe_params, _fe_inst, fe_sketch, x, y = make_fixtures () in
  let bench_rng = Prng.create 555 in
  [
    Test.make ~name:"stoer-wagner n=120"
      (Staged.stage (fun () -> ignore (Stoer_wagner.mincut_value ug)));
    Test.make ~name:"karger run n=120"
      (Staged.stage (fun () -> ignore (Karger.run_once bench_rng ug)));
    Test.make ~name:"dinic edge-connectivity n=120"
      (Staged.stage (fun () -> ignore (Dinic.edge_connectivity ug)));
    Test.make ~name:"ni-strengths weighted n=120"
      (Staged.stage (fun () -> ignore (Strength.compute wg)));
    Test.make ~name:"bk sparsify n=120 eps=0.3"
      (Staged.stage (fun () -> ignore (Benczur_karger.sparsify bench_rng ~eps:0.3 wg)));
    Test.make ~name:"directed forall sparsify n=80"
      (Staged.stage (fun () ->
           ignore (Directed_sparsifier.forall_sparsify bench_rng ~eps:0.3 ~beta:2.0 dg)));
    Test.make ~name:"§3 encode n=64 beta=4 1/eps=8"
      (Staged.stage (fun () -> ignore (Foreach_lb.random_instance rng fe_params)));
    Test.make ~name:"§3 decode one bit (4 cut queries)"
      (Staged.stage (fun () ->
           ignore
             (Foreach_lb.decode_bit fe_params ~query:fe_sketch.Sketch.query 17)));
    Test.make ~name:"gxy build N=1024"
      (Staged.stage (fun () -> ignore (Gxy.build ~x ~y)));
    Test.make ~name:"gomory-hu tree n=60"
      (Staged.stage
         (let small = Generators.erdos_renyi_connected (Prng.create 77) ~n:60 ~p:0.2 in
          fun () -> ignore (Gomory_hu.build small)));
    Test.make ~name:"karger-stein run n=60"
      (Staged.stage
         (let small = Generators.erdos_renyi_connected (Prng.create 78) ~n:60 ~p:0.2 in
          fun () -> ignore (Karger_stein.run_once bench_rng small)));
    Test.make ~name:"laplacian CG solve n=120"
      (Staged.stage
         (let l = Laplacian.of_ugraph ug in
          let b =
            let v = Array.init 120 (fun i -> if i = 0 then 1.0 else 0.0) in
            v.(1) <- -1.0;
            v
          in
          fun () -> ignore (Laplacian.solve l b)));
    Test.make ~name:"l0 sampler update"
      (Staged.stage
         (let s = L0_sampler.create (Prng.create 9) ~universe:16384 in
          let i = ref 0 in
          fun () ->
            incr i;
            L0_sampler.update s (!i mod 16384) 1));
    Test.make ~name:"hadamard superpose k=6"
      (Staged.stage
         (let m = Decode_matrix.create ~k:6 in
          let z = Array.init (Decode_matrix.rows m) (fun _ -> Prng.sign bench_rng) in
          fun () -> ignore (Decode_matrix.superpose m z)));
  ]

(* Wall-clock of the parallelized Karger trial loop vs domain count. The
   mincut value/cut must be identical at every domain count (the Pool
   determinism guarantee); wall-clock speedup tracks the physical cores
   available, so on a single-core container every row times ~the same. *)
let karger_parallel_table () =
  let g =
    Generators.erdos_renyi_connected (Prng.create 31415) ~n:200 ~p:0.05
  in
  let trials = 48 in
  let time_run domains =
    let rng = Prng.create 2718 in
    let t0 = Unix.gettimeofday () in
    let v, c = Karger.mincut ~domains rng ~trials g in
    (Unix.gettimeofday () -. t0, v, c)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "parallel Karger trial loop: n=200, %d trials (recommended domains \
            here: %d)"
           trials
           (Domain.recommended_domain_count ()))
      ~columns:[ "domains"; "wall s"; "speedup"; "mincut"; "same as 1 domain" ]
  in
  let base_s, base_v, base_c = time_run 1 in
  List.iter
    (fun d ->
      let s, v, c = if d = 1 then (base_s, base_v, base_c) else time_run d in
      Table.add_row t
        [
          Table.fint d;
          Printf.sprintf "%.3f" s;
          Printf.sprintf "%.2fx" (base_s /. s);
          Table.ffloat ~digits:1 v;
          Table.fbool (v = base_v && Cut.equal c base_c);
        ])
    [ 1; 2; 4 ];
  Table.print t;
  Common.note
    "every row must report the same cut: trial t draws from Prng.split(master, t)";
  Common.note
    "and the reduction runs in trial order, so DCS_DOMAINS only changes wall-clock."

let run () =
  Common.section "E10  Timing — Bechamel micro-benchmarks (ns per run, OLS)";
  karger_parallel_table ();
  print_newline ();
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let t = Table.create ~title:"core operations" ~columns:[ "benchmark"; "ns/run"; "r²" ] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true ~responder:"monotonic-clock"
              ~predictors:[| "run" |] result.Benchmark.lr
          in
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.0f" e
            | _ -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "n/a"
          in
          Table.add_row t [ Test.Elt.name elt; est; r2 ])
        (Test.elements test))
    (tests ());
  Table.print t

(* Shared stage constructors for the scheduled experiments.

   E3, E4, E19 and E20 used to regenerate the same instance families and
   frozen CSR views independently; here each family is a typed [Sched]
   stage declared exactly once per (parameters, trial count) and memoized
   in this module's tables, so every experiment that draws the same
   configuration shares one vertex of the merged DAG — one computation
   cold, one artifact-store hit warm.

   Stage thunks must be re-entrant (crash supervision may re-execute
   them), so every stage derives its randomness inside the thunk from
   [seed_rng name] — a pure function of the stage name — and never
   captures live [Prng.t] state. The same seed feeds the stage's cache-key
   fingerprint, so reseeding or renaming a stage invalidates its artifact. *)

open Dcs
module Fa = Forall_lb
module Fe = Foreach_lb

type t = {
  dag : Sched.t;
  forall_insts : (int * int * int * int, Fa.instance array Sched.node) Hashtbl.t;
  forall_csrs : (int * int * int * int, Csr.t array Sched.node) Hashtbl.t;
  foreach_insts : (int * int * int * int, Fe.instance array Sched.node) Hashtbl.t;
  graphs : (string, Ugraph.t Sched.node) Hashtbl.t;
  digraphs : (string, Digraph.t Sched.node) Hashtbl.t;
  digraph_csrs : (string, Csr.t Sched.node) Hashtbl.t;
  strengths : (string, Strength.t Sched.node) Hashtbl.t;
}

let create store =
  {
    dag = Sched.create ~store ();
    forall_insts = Hashtbl.create 16;
    forall_csrs = Hashtbl.create 16;
    foreach_insts = Hashtbl.create 16;
    graphs = Hashtbl.create 16;
    digraphs = Hashtbl.create 16;
    digraph_csrs = Hashtbl.create 16;
    strengths = Hashtbl.create 16;
  }

let dag t = t.dag
let value t node = Sched.value t.dag node

let seed_rng name = Prng.create (0x5c4ed + Checksum.crc32 name)
let fp_of name = Prng.fingerprint (seed_rng name)

(* The (beta, 1/eps^2) grid the scheduled experiments share: E4's decode
   battery, E19's representation battery and E20's identity grid all draw
   these configurations at the same trial count, so the instance and
   freeze stages are declared once and reached from three experiments. *)
let battery = [ (1, 8); (2, 8); (1, 16) ]
let battery_trials = 24

let forall_instances t ~beta ~d ~n ~trials =
  let key = (beta, d, n, trials) in
  match Hashtbl.find_opt t.forall_insts key with
  | Some node -> node
  | None ->
      let name =
        Printf.sprintf "forall.instances b%d d%d n%d t%d" beta d n trials
      in
      let node =
        Sched.stage t.dag ~name ~fingerprint:(fp_of name)
          ~codec:(Sched.marshal_codec ()) ~deps:[]
          (fun () ->
            let p = Fa.make_params ~beta ~inv_eps_sq:d n in
            let master = seed_rng name in
            Array.init trials (fun i ->
                Fa.random_instance (Prng.split master i) p))
      in
      Hashtbl.add t.forall_insts key node;
      node

let forall_csrs t ~beta ~d ~n ~trials =
  let key = (beta, d, n, trials) in
  match Hashtbl.find_opt t.forall_csrs key with
  | Some node -> node
  | None ->
      let insts = forall_instances t ~beta ~d ~n ~trials in
      let name =
        Printf.sprintf "forall.freeze b%d d%d n%d t%d" beta d n trials
      in
      let node =
        Sched.stage t.dag ~name ~codec:(Sched.marshal_codec ())
          ~deps:[ Sched.dep insts ]
          (fun () ->
            Array.map (fun i -> Csr.of_digraph i.Fa.graph) (value t insts))
      in
      Hashtbl.add t.forall_csrs key node;
      node

let foreach_instances t ~beta ~inv_eps ~n ~trials =
  let key = (beta, inv_eps, n, trials) in
  match Hashtbl.find_opt t.foreach_insts key with
  | Some node -> node
  | None ->
      let name =
        Printf.sprintf "foreach.instances b%d e%d n%d t%d" beta inv_eps n
          trials
      in
      let node =
        Sched.stage t.dag ~name ~fingerprint:(fp_of name)
          ~codec:(Sched.marshal_codec ()) ~deps:[]
          (fun () ->
            let p = Fe.make_params ~beta ~inv_eps n in
            let master = seed_rng name in
            Array.init trials (fun i ->
                Fe.random_instance (Prng.split master i) p))
      in
      Hashtbl.add t.foreach_insts key node;
      node

(* A connected weighted multigraph source (the Karger sweeps): keyed by a
   caller-chosen tag so distinct experiments can share or separate their
   graphs by name alone. *)
let weighted_graph t ~tag ~n ~p ~max_weight =
  match Hashtbl.find_opt t.graphs tag with
  | Some node -> node
  | None ->
      let name = Printf.sprintf "graph.%s n%d" tag n in
      let node =
        Sched.stage t.dag ~name ~fingerprint:(fp_of name)
          ~codec:(Sched.marshal_codec ()) ~deps:[]
          (fun () ->
            let rng = seed_rng name in
            let g0 = Generators.erdos_renyi_connected rng ~n ~p in
            Generators.random_multigraph_weights rng g0 ~max_weight)
      in
      Hashtbl.add t.graphs tag node;
      node

(* A planted-min-cut weighted source: two dense blocks joined by exactly
   [k] cross edges, integer multigraph weights. The heterogeneous-
   connectivity regime the sparsify-then-solve experiments target —
   in-block local connectivity is huge while the planted cut is tiny. *)
let planted_graph t ~tag ~block ~k ~p_inner ~max_weight =
  match Hashtbl.find_opt t.graphs tag with
  | Some node -> node
  | None ->
      let name = Printf.sprintf "graph.%s b%d k%d" tag block k in
      let node =
        Sched.stage t.dag ~name ~fingerprint:(fp_of name)
          ~codec:(Sched.marshal_codec ()) ~deps:[]
          (fun () ->
            let rng = seed_rng name in
            let g0 = Generators.planted_mincut rng ~block ~k ~p_inner in
            Generators.random_multigraph_weights rng g0 ~max_weight)
      in
      Hashtbl.add t.graphs tag node;
      node

(* A β-balanced weighted digraph source (the directed sparsifier
   experiments), same tag discipline as [weighted_graph]. *)
let balanced_digraph t ~tag ~n ~p ~beta ~max_weight =
  match Hashtbl.find_opt t.digraphs tag with
  | Some node -> node
  | None ->
      let name = Printf.sprintf "digraph.%s n%d b%g" tag n beta in
      let node =
        Sched.stage t.dag ~name ~fingerprint:(fp_of name)
          ~codec:(Sched.marshal_codec ()) ~deps:[]
          (fun () ->
            Generators.balanced_digraph (seed_rng name) ~n ~p ~beta ~max_weight)
      in
      Hashtbl.add t.digraphs tag node;
      node

(* Frozen CSR view of a digraph stage: the certify/repair drivers and the
   connectivity estimator both want the same frozen view, so it is one
   shared vertex per tag. *)
let digraph_csr t ~tag gnode =
  match Hashtbl.find_opt t.digraph_csrs tag with
  | Some node -> node
  | None ->
      let name = Printf.sprintf "freeze.%s" tag in
      let node =
        Sched.stage t.dag ~name ~codec:(Sched.marshal_codec ())
          ~deps:[ Sched.dep gnode ]
          (fun () -> Csr.of_digraph (value t gnode))
      in
      Hashtbl.add t.digraph_csrs tag node;
      node

(* Nagamochi–Ibaraki decomposition of a digraph stage's undirected
   projection, at a bounded round count — the prefilter tier every
   connectivity-sampling consumer shares. *)
let projection_strengths t ~tag ~rounds gnode =
  match Hashtbl.find_opt t.strengths tag with
  | Some node -> node
  | None ->
      let name = Printf.sprintf "strength.%s r%d" tag rounds in
      let node =
        Sched.stage t.dag ~name ~codec:(Sched.marshal_codec ())
          ~deps:[ Sched.dep gnode ]
          (fun () ->
            Strength.compute ~max_rounds:rounds
              (Ugraph.of_digraph (value t gnode)))
      in
      Hashtbl.add t.strengths tag node;
      node

(* E17 — chaos harness: the supervision layer under deliberately hostile
   conditions. Three escalations:

   A. Worker crashes and hangs injected mid-sweep (Dcs.Fault policies drawn
      from the per-attempt streams): the unsupervised pool aborts the whole
      sweep at the first failure, the supervised pool restarts the failing
      trials on fresh domains and completes with results bit-identical to
      the clean run — the injected faults live on the attempt streams, the
      trial values on the task streams, so recovery cannot perturb results.

   B. Checkpoint chaos: a sweep is interrupted at a deterministic point
      (simulated kill), then its snapshot is bit-flipped or truncated. The
      CRC-framed loader rejects the damaged snapshot, the sweep recomputes,
      and the final results are bit-identical to an uninterrupted run in
      every scenario.

   C. Stragglers in the distributed pipeline: shard sketches that arrive
      past the coordinator's deadline (policy timeout rate) trigger
      speculative re-requests; the late copy is kept as a fallback, so the
      estimate never moves — straggling costs speculative bits, not data.

   Everything here is deterministic: fault decisions ride the same split
   streams as the trials, so this table is byte-identical at every
   DCS_DOMAINS and is part of bin/check_determinism.sh's default set. *)

open Dcs

let trials_a = 32
let trials_b = 24
let deadline = 0.02
let restart_budget = 8

let run () =
  Common.section
    "E17 Chaos harness — crash/hang recovery, checkpoint corruption, stragglers";
  let rng0 = Common.rng_for 17 in
  let g = Generators.planted_mincut rng0 ~block:30 ~k:5 ~p_inner:0.55 in
  let exact = Stoer_wagner.mincut_value g in
  Printf.printf
    "workload: Karger estimate on n=%d m=%d (true min cut %.0f), %d trials/sweep\n"
    (Ugraph.n g) (Ugraph.m g) exact trials_a;

  (* The sweep workload: trial i's value is a pure function of its task
     stream, so every run below must agree bit-for-bit. *)
  let trial_value rng = fst (Karger.mincut ~domains:1 rng ~trials:20 g) in

  (* --- Part A: injected worker crashes and hangs --- *)
  let master_a = Prng.fork rng0 in
  let chaos_task ~crash ~hang ctx =
    let chaos =
      Fault.create (Fault.policy ~drop:crash ~timeout:hang ()) ctx.Pool.attempt_rng
    in
    if Fault.drops_message chaos then
      failwith
        (Printf.sprintf "injected crash (trial %d, attempt %d)" ctx.Pool.index
           ctx.Pool.attempt);
    if Fault.times_out chaos then
      (* An injected hang: spin until the supervisor's deadline cancels the
         attempt. Domains are not preemptible, so hangs poll [guard] — the
         recovery contract the supervision layer documents. *)
      while true do
        Pool.guard ctx
      done;
    trial_value ctx.Pool.rng
  in
  let clean, _ =
    Pool.run_supervised ~restart_budget:0 ~rng:master_a ~n:trials_a (fun ctx ->
        trial_value ctx.Pool.rng)
  in
  let ta =
    Table.create
      ~title:
        (Printf.sprintf
           "supervised (restart budget %d, deadline %.0f ms) vs unsupervised pool"
           restart_budget (deadline *. 1000.))
      ~columns:
        [
          "crash p"; "hang p"; "crashes"; "hangs"; "restarts"; "completed";
          "identical"; "unsupervised sweep";
        ]
  in
  List.iter
    (fun (crash, hang) ->
      let supervised_row =
        match
          Pool.run_supervised ~restart_budget ~deadline ~rng:master_a
            ~n:trials_a
            (chaos_task ~crash ~hang)
        with
        | vals, rep -> Some (vals, rep)
        | exception Pool.Poisoned _ -> None
      in
      (* The same chaos decisions at attempt 0, no supervision: first
         failure kills the sweep, pinned to the lowest failing trial. *)
      let unsupervised =
        let probe i =
          let task_master = Prng.split master_a i in
          let ctx =
            {
              Pool.index = i;
              attempt = 0;
              rng = Prng.split task_master 0;
              attempt_rng = Prng.split task_master 1;
              deadline = Some deadline;
              started = Unix.gettimeofday ();
            }
          in
          chaos_task ~crash ~hang ctx
        in
        match Pool.parallel_init ~n:trials_a probe with
        | _ -> "completed"
        | exception Pool.Task_failed { index; exn; _ } ->
            Printf.sprintf "ABORTED at trial %d (%s)" index
              (match exn with
              | Pool.Cancelled _ -> "hang"
              | _ -> "crash")
      in
      match supervised_row with
      | None ->
          Table.add_row ta
            [
              Printf.sprintf "%.2f" crash; Printf.sprintf "%.2f" hang; "-"; "-";
              "-"; "poisoned"; "no"; unsupervised;
            ]
      | Some (vals, rep) ->
          Table.add_row ta
            [
              Printf.sprintf "%.2f" crash;
              Printf.sprintf "%.2f" hang;
              Table.fint rep.Pool.crashes;
              Table.fint rep.Pool.hangs;
              Table.fint rep.Pool.restarts;
              Printf.sprintf "%d/%d" rep.Pool.tasks trials_a;
              (if vals = clean then "yes" else "NO");
              unsupervised;
            ])
    [ (0.0, 0.0); (0.15, 0.05); (0.3, 0.1) ];
  Table.print ta;
  Common.note "identical = supervised results bit-equal to the fault-free sweep:";
  Common.note "injected faults draw from the per-attempt streams, trial values from";
  Common.note "the per-task streams, so restarts can never perturb an estimate.";

  (* --- Part B: checkpoint interruption and corruption --- *)
  let master_b = Prng.fork rng0 in
  let path = Filename.temp_file "dcs_e17" ".ckpt" in
  let encode v = Printf.sprintf "%h" v in
  let decode s =
    try Scanf.sscanf s "%h" (fun v -> Some v)
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  let sweep ?(resume = true) ?abort_after () =
    Checkpoint.sweep ~path ~signature:"E17B" ~resume ~block:4 ?abort_after
      ~encode ~decode ~rng:master_b ~n:trials_b (fun ctx ->
        trial_value ctx.Pool.rng)
  in
  let clean_b, _ =
    Checkpoint.sweep ~signature:"E17B" ~encode ~decode ~rng:master_b
      ~n:trials_b (fun ctx -> trial_value ctx.Pool.rng)
  in
  let tb =
    Table.create
      ~title:
        (Printf.sprintf
           "checkpointed sweep (%d trials, snapshot every 4): kill + damage"
           trials_b)
      ~columns:[ "scenario"; "snapshot"; "resumed"; "recomputed"; "identical" ]
  in
  let row scenario (vals, (rep : Checkpoint.sweep_report)) =
    Table.add_row tb
      [
        scenario;
        (match rep.Checkpoint.discarded with
        | None -> "accepted"
        | Some _ -> "rejected");
        Table.fint rep.Checkpoint.resumed;
        Table.fint rep.Checkpoint.computed;
        (if vals = clean_b then "yes" else "NO");
      ]
  in
  (* Kill the sweep after 10+ newly checkpointed trials, then resume. *)
  (match sweep ~resume:false ~abort_after:10 () with
  | _ -> failwith "E17: abort_after failed to interrupt"
  | exception Checkpoint.Interrupted _ -> ());
  row "kill mid-sweep, resume" (sweep ());
  (* Flip one bit in the (now complete) snapshot: the loader must reject
     it and the sweep must recompute everything, results unchanged. *)
  let flip_bit () =
    let ic = open_in_bin path in
    let raw = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let b = Bytes.of_string raw in
    let pos = Bytes.length b / 2 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x08));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  flip_bit ();
  row "bit flip in snapshot" (sweep ());
  (* Truncate the rewritten snapshot mid-file: same story. *)
  let truncate_file () =
    let ic = open_in_bin path in
    let raw = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc (String.sub raw 0 (String.length raw / 2));
    close_out oc
  in
  truncate_file ();
  row "snapshot truncated" (sweep ());
  (* A snapshot from a different configuration must not resurrect. *)
  Checkpoint.save ~path ~signature:"E17B-other-config"
    [ { Checkpoint.index = 0; payload = encode 999.0 } ];
  row "signature mismatch" (sweep ());
  Sys.remove path;
  Table.print tb;
  Common.note "every damaged snapshot is rejected at load (CRC frame, length checks,";
  Common.note "signature) and the sweep falls back to recomputing — final results are";
  Common.note "bit-identical to the uninterrupted run in all four scenarios.";

  (* --- Part C: stragglers in the distributed pipeline --- *)
  let master_c = Prng.fork rng0 in
  let shards = Partition.random rng0 ~servers:3 g in
  let cfg =
    { (Coordinator.default_config ~eps:0.3) with Coordinator.karger_trials = 40 }
  in
  let tc =
    Table.create
      ~title:"per-sketch deadline overruns: timeout = p per delivery, budget 4"
      ~columns:
        [ "p"; "stragglers"; "spec rr"; "retrans kb"; "degraded"; "estimate" ]
  in
  List.iteri
    (fun row_i p ->
      let mrow = Prng.split master_c row_i in
      let run_pipeline fault =
        Coordinator.min_cut_robust (Prng.split mrow 0) cfg ~fault shards
      in
      let clean_est =
        (run_pipeline (Fault.create Fault.no_faults (Prng.split mrow 1)))
          .Coordinator.base
          .Coordinator.estimate
      in
      let r =
        run_pipeline
          (Fault.create (Fault.policy ~timeout:p ()) (Prng.split mrow 1))
      in
      let rep = r.Coordinator.report in
      Table.add_row tc
        [
          Printf.sprintf "%.2f" p;
          Table.fint rep.Coordinator.stragglers;
          Table.fint rep.Coordinator.speculative_retransmissions;
          Common.kbits rep.Coordinator.retransmit_bits;
          (if rep.Coordinator.degraded then "yes" else "no");
          (if r.Coordinator.base.Coordinator.estimate = clean_est then
             "= clean"
           else "DIVERGED");
        ])
    [ 0.0; 0.25; 0.6; 1.0 ];
  Table.print tc;
  Common.note "a straggling sketch is re-requested speculatively but never lost (the";
  Common.note "late copy is the fallback), so the estimate matches the clean run even";
  Common.note "at p = 1.0 — the cost is the speculative retransmission bits."

(* Shared helpers for the experiment harness. *)

open Dcs

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt

(* Success-rate cell with a trials annotation. *)
let rate_cell ~ok ~total =
  Printf.sprintf "%.2f (%d/%d)" (float_of_int ok /. float_of_int total) ok total

let kbits bits = Printf.sprintf "%.1f" (float_of_int bits /. 1000.0)

(* Registry probe-delta: snapshot a counter, read its increment later. *)
type probe = { counter : Obs.Metrics.counter; before : int }

let probe name =
  let c = Obs.Metrics.counter name in
  { counter = c; before = Obs.Metrics.counter_value c }

let delta p = Obs.Metrics.counter_value p.counter - p.before

let seed_of_experiment id =
  (* Stable per-experiment seeds so every table is reproducible in
     isolation. *)
  1000 + id

let rng_for id = Prng.create (seed_of_experiment id)

(* --- checkpoint/resume plumbing (set by bench/main.ml's CLI) ---

   All checkpoint chatter goes to stderr: stdout carries only the result
   tables, so a resumed run's stdout is byte-identical to an uninterrupted
   one (bin/check_determinism.sh diffs exactly that). *)

let checkpoint_dir : string option ref = ref None
let resume_requested = ref false

(* Global countdown for --abort-after: simulated-kill threshold shared by
   every sweep of the selected experiments, so "interrupt after N trials"
   means N trials into the whole run, wherever that lands. *)
let abort_countdown : int option ref = ref None

let checkpoint_path name =
  Option.map (fun dir -> Filename.concat dir (name ^ ".ckpt")) !checkpoint_dir

let sweep ~name ~signature ?block ?domains ?restart_budget ?deadline ~encode
    ~decode ~rng ~n task =
  let path = checkpoint_path name in
  let results, (rep : Checkpoint.sweep_report) =
    Checkpoint.sweep ?path ~signature ~resume:!resume_requested ?block
      ?abort_after:!abort_countdown ?domains ?restart_budget ?deadline ~encode
      ~decode ~rng ~n task
  in
  (match !abort_countdown with
  | Some a -> abort_countdown := Some (max 0 (a - rep.Checkpoint.computed))
  | None -> ());
  (match rep.Checkpoint.discarded with
  | Some why ->
      Printf.eprintf "  [checkpoint %s: snapshot rejected — %s]\n%!" name why
  | None -> ());
  if rep.Checkpoint.resumed > 0 then
    Printf.eprintf "  [checkpoint %s: resumed %d/%d trials]\n%!" name
      rep.Checkpoint.resumed n;
  if rep.Checkpoint.crashes + rep.Checkpoint.hangs > 0 then
    Printf.eprintf "  [supervisor %s: %d crashes, %d hangs, %d restarts]\n%!"
      name rep.Checkpoint.crashes rep.Checkpoint.hangs rep.Checkpoint.restarts;
  (results, rep)

(* E18 — Profiling pass: the Theorem 1.1 and 1.3 pipelines re-run under
   full instrumentation.

   Two things are checked, one is merely shown:

   (a) The observability registry (Dcs.Obs.Metrics) must agree EXACTLY with
   the repo's bespoke meters. Every trial uses fresh channels/oracles, so a
   registry delta over the run equals the sum of the per-instance meters:
   channel.bits vs Channel.total_bits, oracle.* vs Oracle.total_queries,
   sketch.size_bits vs the sketches' own size accounting, and the decode
   query arithmetic (4 cut queries per decoded bit). A mismatch fails the
   experiment — these identities are what make the registry trustworthy.

   (b) The metrics snapshot is counts-only, so it is byte-identical across
   DCS_DOMAINS (bin/check_determinism.sh diffs the DCS_METRICS JSON of this
   experiment at 1/2/4 domains).

   (c) The hot-path table: top spans by self time. Wall clock — for humans
   only, never diffed. *)

open Dcs
module F = Foreach_lb
module M = Obs.Metrics

(* A registry probe: remember the counter's value now, read the delta
   later. Deltas (not resets) keep E18 composable with other experiments in
   the same process. *)
type probe = { counter : M.counter; before : int }

let probe name =
  let c = M.counter name in
  { counter = c; before = M.counter_value c }

let delta p = M.counter_value p.counter - p.before

let all_agree = ref true

let check t part invariant ~expected ~registry =
  let ok = expected = registry in
  if not ok then all_agree := false;
  Table.add_row t
    [ part; invariant; Table.fint expected; Table.fint registry; Table.fbool ok ]

(* Theorem 1.1 pipeline: encode a random instance, frame + ship the exact
   sketch over a fresh channel, decode random bits through the shipped
   sketch. *)
let part_a rng t =
  let p_bits = probe "channel.bits" in
  let p_msgs = probe "channel.messages" in
  let p_decoded = probe "foreach_lb.bits_decoded" in
  let p_queries = probe "foreach_lb.cut_queries" in
  let p_built = probe "sketch.built" in
  let p_size = probe "sketch.size_bits" in
  let p = F.make_params ~beta:4 ~inv_eps:8 64 in
  let trials = 4 and bits_per_trial = 40 in
  let master = Prng.fork rng in
  let sent_bits = ref 0 and sketch_bits = ref 0 and correct = ref 0 in
  for trial = 0 to trials - 1 do
    let rng = Prng.split master trial in
    let inst = F.random_instance rng p in
    let sk = Exact_sketch.create inst.F.graph in
    let ch = Channel.create () in
    Channel.send ch ~bits:(sk.Sketch.size_bits + Sketch.checksum_bits);
    sent_bits := !sent_bits + Channel.total_bits ch;
    sketch_bits := !sketch_bits + sk.Sketch.size_bits;
    for _ = 1 to bits_per_trial do
      let q = Prng.int rng (F.bits_capacity p) in
      let r = F.decode_bit p ~query:sk.Sketch.query q in
      if r.F.decoded = inst.F.s.(q) then incr correct
    done
  done;
  let decoded = trials * bits_per_trial in
  check t "1.1" "channel.bits = sum Channel.total_bits" ~expected:!sent_bits
    ~registry:(delta p_bits);
  check t "1.1" "channel.messages = frames shipped" ~expected:trials
    ~registry:(delta p_msgs);
  check t "1.1" "sketch.built = sketches constructed" ~expected:trials
    ~registry:(delta p_built);
  check t "1.1" "sketch.size_bits = sum size_bits" ~expected:!sketch_bits
    ~registry:(delta p_size);
  check t "1.1" "foreach_lb.bits_decoded = decode calls" ~expected:decoded
    ~registry:(delta p_decoded);
  check t "1.1" "foreach_lb.cut_queries = 4 x decoded" ~expected:(4 * decoded)
    ~registry:(delta p_queries);
  (!correct, decoded)

(* Theorem 1.3 pipeline: local-query estimation on G_{x,y}, each trial with
   a fresh metered oracle, its Lemma 5.6 communication shipped over a fresh
   channel. *)
let part_b rng t =
  let p_deg = probe "oracle.degree_queries" in
  let p_edge = probe "oracle.edge_queries" in
  let p_adj = probe "oracle.adjacency_queries" in
  let p_bits = probe "channel.bits" in
  let p_runs = probe "estimator.runs" in
  let l = 48 in
  let build ~alpha =
    let n_bits = l * l in
    let blocks = 16 in
    let inst =
      Two_sum.generate rng ~t:blocks ~len:(n_bits / blocks) ~alpha
        ~frac_intersecting:0.25
    in
    let x, y = Two_sum.concat_pair inst in
    let int_xy = Bitstring.intersection_size x y in
    assert (l >= 3 * int_xy);
    (Gxy.build ~x ~y, int_xy)
  in
  let alphas = [ 2; 3; 4 ] in
  let queries = ref 0 and comm = ref 0 and ok_count = ref 0 in
  List.iter
    (fun alpha ->
      let g, int_xy = build ~alpha in
      let k = 2 * int_xy in
      let eps = 0.7 in
      let o = Oracle.create ~memoize:true g in
      let r = Estimator.estimate ~c0:1.0 rng o ~eps ~mode:Estimator.Modified in
      queries := !queries + r.Estimator.total_queries;
      let ch = Channel.create () in
      Channel.send ch ~bits:r.Estimator.comm_bits;
      comm := !comm + Channel.total_bits ch;
      if
        Float.abs (r.Estimator.estimate -. float_of_int k)
        <= (eps *. float_of_int k) +. 1e-9
      then incr ok_count)
    alphas;
  let oracle_delta = delta p_deg + delta p_edge + delta p_adj in
  check t "1.3" "oracle.* = sum Oracle.total_queries" ~expected:!queries
    ~registry:oracle_delta;
  check t "1.3" "channel.bits = sum Estimator comm_bits" ~expected:!comm
    ~registry:(delta p_bits);
  check t "1.3" "estimator.runs = estimate calls"
    ~expected:(List.length alphas) ~registry:(delta p_runs);
  (!ok_count, List.length alphas)

let run () =
  Common.section "E18 Profiling: instrumented 1.1/1.3 pipelines";
  let was_tracing = Obs.Trace.enabled () in
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_tracing then Obs.Trace.disable ())
    (fun () ->
      let rng = Common.rng_for 18 in
      let t =
        Table.create ~title:"registry vs bespoke meters (must agree exactly)"
          ~columns:[ "thm"; "invariant"; "expected"; "registry"; "agree" ]
      in
      let a_ok, a_total = part_a rng t in
      Table.add_rule t;
      let b_ok, b_total = part_b rng t in
      Table.print t;
      Common.note "Thm 1.1 decode: %s correct; Thm 1.3 estimates: %d/%d in bound"
        (Common.rate_cell ~ok:a_ok ~total:a_total)
        b_ok b_total;
      if not !all_agree then
        failwith "E18: observability registry disagrees with bespoke meters";
      print_newline ();
      (* Wall clock below this line: stdout of E18 is excluded from the
         byte-diff determinism gate; only its DCS_METRICS snapshot is. *)
      Table.print (Obs.Report.span_table ~top:12 ()))

(* E16 — fault injection: what robustness costs, in bits and queries,
   against the paper's idealized protocols. Part A runs the distributed
   pipeline over lossy channels (drops + corruptions, checksummed frames,
   bounded re-request); part B runs the Theorem 5.7 estimator against a
   flaky oracle (timeouts + lies, retry-with-backoff + majority vote) and
   reports the measured query overhead factor vs the Õ(m/(ε²k)) budget.

   Both sweeps run under the supervised trial engine through
   Common.sweep, so they are checkpoint/resumable: with --checkpoint DIR
   every completed trial is snapshotted atomically, and an interrupted run
   restarted with --resume recomputes only the missing trials — stdout is
   byte-identical either way.

   Determinism: trial t of each sweep row runs on the stream
   Prng.split (Prng.split mrow t) 0 (the supervised engine's task stream),
   and every fault injector forks off that stream — the tables are
   byte-identical at every DCS_DOMAINS setting and across any
   interrupt/resume pattern (bin/check_determinism.sh checks both). *)

open Dcs

let trials_a = 24
let trials_b = 16

(* Exact textual round-trips for checkpointed trial results: %h floats are
   lossless, so a resumed trial is bit-identical to a recomputed one. *)

let encode_a = function
  | None -> "fail"
  | Some (est, retrans, lost, degraded, rbits, pbits) ->
      Printf.sprintf "ok %h %d %d %d %d %d" est retrans lost
        (if degraded then 1 else 0)
        rbits pbits

let decode_a s =
  if s = "fail" then Some None
  else
    try
      Scanf.sscanf s "ok %h %d %d %d %d %d" (fun est retrans lost deg rb pb ->
          Some (Some (est, retrans, lost, deg = 1, rb, pb)))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let encode_b = function
  | None -> "exhausted"
  | Some (est, queries, retries) -> Printf.sprintf "ok %h %d %d" est queries retries

let decode_b s =
  if s = "exhausted" then Some None
  else
    try
      Scanf.sscanf s "ok %h %d %d" (fun est q r -> Some (Some (est, q, r)))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let run () =
  Common.section "E16 Fault injection — robustness overhead vs fault rate";
  let rng0 = Common.rng_for 16 in

  (* --- Part A: lossy channels under the distributed pipeline --- *)
  let g = Generators.planted_mincut rng0 ~block:50 ~k:7 ~p_inner:0.6 in
  let exact = Stoer_wagner.mincut_value g in
  let servers = 3 in
  let shards = Partition.random rng0 ~servers g in
  let cfg =
    { (Coordinator.default_config ~eps:0.3) with Coordinator.karger_trials = 40 }
  in
  Printf.printf
    "A: pipeline, n=%d m=%d true min cut=%.0f, %d servers, retry budget 4\n"
    (Ugraph.n g) (Ugraph.m g) exact servers;
  let ta =
    Table.create ~title:"lossy channels: drop = corrupt = p per delivery"
      ~columns:
        [
          "p"; "decode ok"; "estimate ok"; "retrans"; "lost"; "degraded";
          "retrans kb"; "overhead";
        ]
  in
  let master_a = Prng.fork rng0 in
  List.iteri
    (fun row p ->
      let mrow = Prng.split master_a row in
      (* The pipeline itself fans its contraction trials over domains, so
         the sweep trials run sequentially (domains 1); supervision and
         checkpointing still apply per trial. *)
      let results, _ =
        Common.sweep
          ~name:(Printf.sprintf "e16a_r%d" row)
          ~signature:
            (Printf.sprintf "E16A seed=%d row=%d p=%.2f trials=%d"
               (Common.seed_of_experiment 16) row p trials_a)
          ~block:8 ~domains:1 ~encode:encode_a ~decode:decode_a ~rng:mrow
          ~n:trials_a
          (fun ctx ->
            let rng = ctx.Pool.rng in
            let fault = Fault.create (Fault.policy ~drop:p ~corrupt:p ()) rng in
            match Coordinator.min_cut_robust rng cfg ~fault shards with
            | r ->
                Some
                  ( r.Coordinator.base.Coordinator.estimate,
                    r.Coordinator.report.Coordinator.retransmissions,
                    r.Coordinator.report.Coordinator.coarse_lost
                    + r.Coordinator.report.Coordinator.fine_lost,
                    r.Coordinator.report.Coordinator.degraded,
                    r.Coordinator.report.Coordinator.retransmit_bits,
                    r.Coordinator.base.Coordinator.total_bits )
            | exception (Failure _ | Invalid_argument _) -> None)
      in
      let decode_ok =
        Array.fold_left (fun a r -> if r <> None then a + 1 else a) 0 results
      in
      let est_ok =
        Array.fold_left
          (fun a r ->
            match r with
            | Some (est, _, _, _, _, _) when Float.abs (est -. exact) <= 0.5 *. exact
              ->
                a + 1
            | _ -> a)
          0 results
      in
      let sum f =
        Array.fold_left
          (fun a r -> match r with Some v -> a + f v | None -> a)
          0 results
      in
      let retrans = sum (fun (_, retrans, _, _, _, _) -> retrans) in
      let lost = sum (fun (_, _, lost, _, _, _) -> lost) in
      let degraded = sum (fun (_, _, _, deg, _, _) -> if deg then 1 else 0) in
      let retrans_bits = sum (fun (_, _, _, _, rbits, _) -> rbits) in
      let payload_bits = sum (fun (_, _, _, _, _, pbits) -> pbits) in
      let overhead =
        if payload_bits = 0 then 0.0
        else float_of_int retrans_bits /. float_of_int payload_bits
      in
      Table.add_row ta
        [
          Printf.sprintf "%.2f" p;
          Common.rate_cell ~ok:decode_ok ~total:trials_a;
          Common.rate_cell ~ok:est_ok ~total:trials_a;
          Table.fint retrans;
          Table.fint lost;
          Table.fint degraded;
          Common.kbits retrans_bits;
          Table.fpct overhead;
        ])
    [ 0.0; 0.05; 0.1; 0.2; 0.3 ];
  Table.print ta;
  Common.note "p = 0 runs the idealized code path (min_cut is exactly the zero-fault";
  Common.note "instance of min_cut_robust — same estimates, same payload bits);";
  Common.note "overhead = retransmitted bits / first-send bits.";

  (* --- Part B: flaky local-query oracle under the Theorem 5.7 estimator --- *)
  let g2 = Generators.planted_mincut rng0 ~block:40 ~k:6 ~p_inner:0.5 in
  let k_true = Stoer_wagner.mincut_value g2 in
  let eps = 0.5 in
  let m = float_of_int (Ugraph.m g2) in
  let budget = m /. (eps *. eps *. k_true) in
  Printf.printf
    "\nB: estimator, n=%d m=%.0f k=%.0f eps=%.2f, Thm 5.7 budget m/(eps^2 k)=%.0f\n"
    (Ugraph.n g2) m k_true eps budget;
  let tb =
    Table.create
      ~title:"flaky oracle: timeout = p, lie = p/2 per query (retries <= 8)"
      ~columns:
        [ "p"; "vote k"; "success"; "avg queries"; "retries"; "overhead"; "q/budget" ]
  in
  let master_b = Prng.fork rng0 in
  let clean_queries = ref 0.0 in
  List.iteri
    (fun row (p, vote_k) ->
      let mrow = Prng.split master_b row in
      let results, _ =
        Common.sweep
          ~name:(Printf.sprintf "e16b_r%d" row)
          ~signature:
            (Printf.sprintf "E16B seed=%d row=%d p=%.2f vote=%d trials=%d"
               (Common.seed_of_experiment 16) row p vote_k trials_b)
          ~block:8 ~encode:encode_b ~decode:decode_b ~rng:mrow ~n:trials_b
          (fun ctx ->
            let rng = ctx.Pool.rng in
            let fault =
              Fault.create (Fault.policy ~timeout:p ~lie:(p /. 2.0) ()) rng
            in
            let o = Oracle.create g2 in
            let fo = Faulty_oracle.create ~vote_k fault o in
            try
              let r = Estimator.estimate ~faulty:fo rng o ~eps ~mode:Estimator.Modified in
              Some
                ( r.Estimator.estimate,
                  r.Estimator.total_queries,
                  (Faulty_oracle.stats fo).Faulty_oracle.retries )
            with Faulty_oracle.Exhausted _ -> None)
      in
      let ok =
        Array.fold_left
          (fun a r ->
            match r with
            | Some (est, _, _) when Float.abs (est -. k_true) <= 0.5 *. k_true -> a + 1
            | _ -> a)
          0 results
      in
      let completed =
        Array.fold_left (fun a r -> if r <> None then a + 1 else a) 0 results
      in
      let avg_q =
        if completed = 0 then 0.0
        else
          Array.fold_left
            (fun a r -> match r with Some (_, q, _) -> a +. float_of_int q | None -> a)
            0.0 results
          /. float_of_int completed
      in
      let retries =
        Array.fold_left
          (fun a r -> match r with Some (_, _, rt) -> a + rt | None -> a)
          0 results
      in
      if row = 0 then clean_queries := avg_q;
      let overhead = if !clean_queries > 0.0 then avg_q /. !clean_queries else 0.0 in
      Table.add_row tb
        [
          Printf.sprintf "%.2f" p;
          Table.fint vote_k;
          Common.rate_cell ~ok ~total:trials_b;
          Table.ffloat ~digits:0 avg_q;
          Table.fint retries;
          Printf.sprintf "%.2fx" overhead;
          Printf.sprintf "%.1fx" (avg_q /. budget);
        ])
    [ (0.0, 1); (0.05, 3); (0.1, 3); (0.2, 3); (0.2, 7) ];
  Table.print tb;
  Common.note "success = estimate within (1 ± 0.5)k; overhead = avg queries vs the";
  Common.note "p = 0 row (which is bit-identical to the unwrapped estimator).";
  Common.note "Lies are absorbed by k-way majority votes, timeouts by <= 8 retries";
  Common.note "with exponential backoff; every retry and vote hits the query meter.";
  Common.note "At p = 0.2 a 3-vote majority is itself subverted (about 3 in 100";
  Common.note "answers stay wrong) — widening to k = 7 buys the success back at";
  Common.note "the proportional extra query cost: robustness is a measurable factor,";
  Common.note "never free, exactly the trade the lower bounds price in bits."

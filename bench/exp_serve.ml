(* E21 — dcutd serving layer: admission control + graceful degradation.

   Drives the [Serve] control plane (Issue 7's tentpole) with the
   deterministic open-loop generator through five ~200k-request scenarios
   — one million queries total — and enforces the serving contract:

   - zero silent drops: every offered request gets exactly one typed
     response, [answered + shed + deadline = offered], cross-checked
     against the serve.* registry counters (E18-style);
   - sketch-cache hit rate >= 90% on the hot-key trace;
   - typed shedding under the burst battery (and none when calm);
   - the circuit breaker trips to degraded mode and recovers (hysteresis)
     under both overload and a faulty oracle;
   - every answer — degraded included — lands within its advertised eps,
     verified on a deterministic subsample against exact re-evaluation;
   - p50/p99 latency and throughput are virtual-tick figures, so the whole
     table is byte-identical across DCS_DOMAINS (the determinism gate runs
     this experiment at 1/2/4). Wall clock goes to stderr only. *)

open Dcs
module M = Obs.Metrics

type probe = { counter : M.counter; before : int }

let probe name =
  let c = M.counter name in
  { counter = c; before = M.counter_value c }

let delta p = M.counter_value p.counter - p.before

let fail fmt = Printf.ksprintf failwith fmt

let enforce name cond = if not cond then fail "E21: %s violated" name

(* The catalog: 64 modest weighted graphs; requests address them by key
   and the server caches by Csr.fingerprint. *)
let catalog rng =
  let master = Prng.fork rng in
  Array.init 64 (fun i ->
      let r = Prng.split master i in
      let g0 = Generators.erdos_renyi_connected r ~n:48 ~p:0.12 in
      Csr.of_ugraph (Generators.random_multigraph_weights r g0 ~max_weight:8))

let percentile sorted p_hundredths =
  let len = Array.length sorted in
  if len = 0 then 0 else sorted.((len - 1) * p_hundredths / 100)

(* Exact re-evaluation of a request's query, for the eps-conformance
   subsample. *)
let exact_value graphs (r : Traffic.request) =
  let g = graphs.(r.key) in
  Csr.cut_value g (Cut.random (Prng.create r.cut_seed) ~n:(Csr.n g))

type row = {
  name : string;
  stats : Serve.stats;
  p50 : int;
  p99 : int;
  kept : int; (* eps-conformant answers in the subsample *)
  sampled : int;
}

let run_scenario ~name ~graphs ~rng ~n ~traffic ~cfg =
  let t0 = Unix.gettimeofday () in
  let trace_rng = Prng.fork rng in
  let server_rng = Prng.fork rng in
  let reqs = Traffic.generate trace_rng traffic ~n in
  let srv = Serve.create cfg ~graphs ~rng:server_rng in
  let responses = Serve.run srv reqs in
  let stats = Serve.stats srv in
  if Array.length responses <> n then fail "E21 %s: lost responses" name;
  (* Zero silent drops: the typed responses must re-add to the offer. *)
  let ans = ref 0 and shed = ref 0 and dl = ref 0 in
  Array.iter
    (function
      | Serve.Answered _ -> incr ans
      | Serve.Rejected (Serve.Overloaded _) -> incr shed
      | Serve.Rejected (Serve.Deadline_exceeded _) -> incr dl)
    responses;
  if !ans <> stats.Serve.answered || !shed <> stats.Serve.shed
     || !dl <> stats.Serve.deadline_rejections
  then fail "E21 %s: response types disagree with server accounting" name;
  if !ans + !shed + !dl <> n then fail "E21 %s: silent drop detected" name;
  (* Advertised-accuracy conformance on a deterministic subsample: every
     97th request that was answered, degraded or not. *)
  let kept = ref 0 and sampled = ref 0 in
  Array.iteri
    (fun i resp ->
      if i mod 97 = 0 then
        match resp with
        | Serve.Answered a ->
            incr sampled;
            let exact = exact_value graphs reqs.(i) in
            if Float.abs (a.Serve.value -. exact) <= (a.Serve.eps *. exact) +. 1e-9
            then incr kept
        | Serve.Rejected _ -> ())
    responses;
  if !kept <> !sampled then
    fail "E21 %s: %d/%d sampled answers outside their advertised eps" name
      (!sampled - !kept) !sampled;
  let lats =
    Array.of_list
      (List.filter_map
         (function Serve.Answered a -> Some a.Serve.latency | _ -> None)
         (Array.to_list responses))
  in
  Array.sort compare lats;
  Printf.eprintf "  [E21 %s: %d reqs in %.2fs wall]\n%!" name n
    (Unix.gettimeofday () -. t0);
  {
    name;
    stats;
    p50 = percentile lats 50;
    p99 = percentile lats 99;
    kept = !kept;
    sampled = !sampled;
  }

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%.1f%%" (100. *. float num /. float den)

let run () =
  Common.section "E21 dcutd serving layer: admission control + degradation";
  let rng = Common.rng_for 21 in
  let graphs = catalog rng in
  let p_off = probe "serve.offered" in
  let p_ans = probe "serve.answered" in
  let p_shed = probe "serve.shed" in
  let p_dl = probe "serve.deadline_exceeded" in
  let p_gave_up = probe "channel.gave_up" in
  let base = Serve.default_config in
  let calm_traffic =
    { Traffic.default with Traffic.burst_every = 0; Traffic.burst_len = 0 }
  in
  let scen_master = Prng.fork rng in
  let scen i = Prng.split scen_master i in
  let n = 200_000 in

  (* S1 calm: ample capacity — nothing shed, nothing late, hot cache. *)
  let s1 =
    run_scenario ~name:"calm" ~graphs ~rng:(scen 1) ~n ~traffic:calm_traffic
      ~cfg:base
  in
  enforce "calm sheds nothing" (s1.stats.Serve.shed = 0);
  enforce "calm misses no deadline" (s1.stats.Serve.deadline_rejections = 0);
  enforce "calm answers everything" (s1.stats.Serve.answered = n);
  enforce "hot-key cache hit rate >= 90%"
    (10 * s1.stats.Serve.cache_hits
    >= 9 * (s1.stats.Serve.cache_hits + s1.stats.Serve.cache_misses));
  if s1.p99 > 128 then
    fail "E21: calm p99 %d exceeds the 128-tick floor (p50 %d)" s1.p99 s1.p50;

  (* S2 cache churn: the cache barely fits the hot set, so the cold tail
     forces evictions — hits stay majority, eviction accounting exact. *)
  let s2 =
    run_scenario ~name:"cache-churn" ~graphs ~rng:(scen 2) ~n
      ~traffic:{ calm_traffic with Traffic.hot_fraction = 0.9 }
      ~cfg:{ base with Serve.cache_capacity = 8 }
  in
  enforce "churn still evicts" (s2.stats.Serve.cache_evictions > 0);
  enforce "churn hits stay majority"
    (s2.stats.Serve.cache_hits > s2.stats.Serve.cache_misses);

  (* S3 burst battery: 16x arrival bursts against a small queue — typed
     shedding, a queue-depth breaker trip, recovery between bursts. *)
  let s3 =
    run_scenario ~name:"burst" ~graphs ~rng:(scen 3) ~n
      ~traffic:
        {
          Traffic.default with
          Traffic.burst_every = 4000;
          Traffic.burst_len = 600;
          Traffic.burst_factor = 16;
        }
      ~cfg:
        {
          base with
          Serve.queue_depth = 256;
          Serve.batch = 64;
          Serve.cost_degraded = 1;
          Serve.breaker =
            {
              Serve.window = 64;
              Serve.trip_fault_rate = 0.5;
              Serve.trip_queue = 192;
              Serve.recovery_windows = 2;
            };
        }
  in
  enforce "bursts shed (typed, not dropped)" (s3.stats.Serve.shed > 0);
  enforce "burst queue peak reaches the bound"
    (s3.stats.Serve.queue_peak >= 256);
  enforce "burst trips the breaker" (s3.stats.Serve.breaker_trips >= 1);
  enforce "burst recovery (hysteresis)" (s3.stats.Serve.breaker_recoveries >= 1);
  enforce "burst serves degraded answers" (s3.stats.Serve.degraded_answers > 0);

  (* S4 faulty oracle: 75% timeouts — jittered-backoff retries, exhausted
     budgets fall back degraded, the fault-rate breaker trips and the
     degraded windows recover it. *)
  let s4 =
    run_scenario ~name:"faulty-oracle" ~graphs ~rng:(scen 4) ~n
      ~traffic:calm_traffic
      ~cfg:
        {
          base with
          Serve.oracle = Fault.policy ~timeout:0.75 ();
          Serve.retry_budget = 3;
          Serve.backoff_cap = 8;
          Serve.breaker =
            {
              Serve.window = 64;
              Serve.trip_fault_rate = 0.5;
              Serve.trip_queue = 384;
              Serve.recovery_windows = 3;
            };
        }
  in
  enforce "oracle faults retry" (s4.stats.Serve.oracle_retries > 0);
  enforce "oracle budgets exhaust to degraded"
    (s4.stats.Serve.oracle_exhausted > 0);
  enforce "backoff ticks charged" (s4.stats.Serve.backoff_ticks > 0);
  enforce "fault rate trips the breaker" (s4.stats.Serve.breaker_trips >= 1);
  enforce "degraded windows recover it"
    (s4.stats.Serve.breaker_recoveries >= 1);

  (* S5 flaky wire: heavy drop + corruption against a bounded
     retransmission loop — frames that give up reject their requests with
     the loss accounting attached. *)
  let s5 =
    run_scenario ~name:"flaky-wire" ~graphs ~rng:(scen 5) ~n
      ~traffic:calm_traffic
      ~cfg:
        {
          base with
          Serve.wire = Fault.policy ~drop:0.25 ~corrupt:0.25 ();
          Serve.max_retransmissions = 2;
        }
  in
  enforce "wire give-ups reject typed" (s5.stats.Serve.wire_rejections > 0);
  enforce "channel.gave_up metered" (delta p_gave_up > 0);

  let rows = [ s1; s2; s3; s4; s5 ] in
  let t =
    Table.create ~title:"E21 serving battery: 5 x 200k requests"
      ~columns:
        [
          "scenario"; "offered"; "answered"; "degr"; "shed"; "late";
          "hit-rate"; "p50"; "p99"; "trips"; "req/ktick";
        ]
  in
  List.iter
    (fun r ->
      let s = r.stats in
      Table.add_row t
        [
          r.name;
          Table.fint s.Serve.offered;
          Table.fint s.Serve.answered;
          pct s.Serve.degraded_answers s.Serve.answered;
          Table.fint s.Serve.shed;
          Table.fint s.Serve.deadline_rejections;
          pct s.Serve.cache_hits (s.Serve.cache_hits + s.Serve.cache_misses);
          Table.fint r.p50;
          Table.fint r.p99;
          Table.fint s.Serve.breaker_trips;
          Table.fint (s.Serve.offered * 1000 / max 1 s.Serve.clock);
        ])
    rows;
  Table.print t;

  (* Registry cross-check: the serve.* counters must agree with the summed
     per-scenario accounting — exactly once each, no silent drops. *)
  let sum f = List.fold_left (fun acc r -> acc + f r.stats) 0 rows in
  let ct =
    Table.create ~title:"serve.* registry vs per-scenario accounting"
      ~columns:[ "invariant"; "expected"; "registry"; "agree" ]
  in
  let agree = ref true in
  let check name expected registry =
    if expected <> registry then agree := false;
    Table.add_row ct
      [ name; Table.fint expected; Table.fint registry; Table.fbool (expected = registry) ]
  in
  check "serve.offered = 5 x 200k" (sum (fun s -> s.Serve.offered)) (delta p_off);
  check "serve.answered" (sum (fun s -> s.Serve.answered)) (delta p_ans);
  check "serve.shed" (sum (fun s -> s.Serve.shed)) (delta p_shed);
  check "serve.deadline_exceeded"
    (sum (fun s -> s.Serve.deadline_rejections))
    (delta p_dl);
  check "offered = answered + shed + deadline"
    (sum (fun s -> s.Serve.offered))
    (delta p_ans + delta p_shed + delta p_dl);
  Table.print ct;
  if not !agree then fail "E21: serve registry disagrees with the accounting";
  let sampled = List.fold_left (fun acc r -> acc + r.sampled) 0 rows in
  Common.note "every answer within its advertised eps (subsample: %d checked)"
    sampled;
  Common.note "rejected != dropped: every request got a typed response;";
  Common.note "latency/throughput are virtual ticks — wall clock on stderr only."
